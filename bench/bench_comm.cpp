// Staleness-aware comm path ablation: delivered messages / bytes with
// latest-wins coalescing off vs on, under the two stress scenarios from
// ISSUE 3 — a slow consumer (heterogeneous fleet, long flush windows, one
// frame in flight per link) and a flaky consumer (disconnect/reconnect
// churn) — plus a Poisson solution-parity check.
//
// Output: a JSON document on stdout (run_bench.sh captures it into
// BENCH_comm.json and stamps it with git SHA + thread counts); a human
// summary on stderr.
//
// Parity: the asynchronous fixed point is trajectory-dependent at the
// floating-point level (the inner CG accepts any iterate inside its
// tolerance ball), so the off-vs-on answers agree to solver precision, not
// to the ulp. What IS bit-for-bit is determinism: the coalesced run replayed
// with the same seed must reproduce the non-coalesced run's *converged
// answer pipeline* exactly — same seed, same comm config, identical bits.
// The JSON reports both: `replay_bitwise` (hard gate) and the off-vs-on
// `max_abs_diff` / residuals (must sit at solver precision).
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "core/messages.hpp"
#include "support/flags.hpp"

using namespace jacepp;
using namespace jacepp::bench;

namespace {

struct CommRun {
  ExperimentOutcome outcome;
  std::uint64_t sent_data = 0;       ///< TaskData messages actors sent
  std::uint64_t delivered_data = 0;  ///< TaskData messages actors received
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_frames = 0;     ///< frames delivered (a Batch is one)
  net::CommStatsSnapshot comm;
  linalg::Vector solution;
};

std::uint64_t by_type(const std::unordered_map<net::MessageType, std::uint64_t>& m,
                      net::MessageType type) {
  const auto it = m.find(type);
  return it == m.end() ? 0 : it->second;
}

CommRun run_one(const ExperimentParams& p, const core::CommConfig& comm,
                bool relax_failure_detection = false) {
  auto config = make_config(p);
  config.comm = comm;
  if (relax_failure_detection) {
    // The slow-consumer ablation needs the NON-coalesced arm to survive to
    // convergence: under paper timeouts its burst drains stall daemons long
    // enough that the overlay declares them dead and replacement churn takes
    // over (visible in failures_detected). Relaxing detection isolates the
    // comm measurement from the failure detector; the flaky scenario keeps
    // paper timeouts since it needs real detections.
    config.timing.daemon_timeout = 60.0;
    config.timing.super_peer_timeout = 60.0;
  }
  core::SimDeployment deployment(config);

  CommRun r;
  r.outcome.report = deployment.run();
  r.outcome.completed = r.outcome.report.spawner.completed;
  r.outcome.execution_time = r.outcome.report.spawner.execution_time();
  r.solution = poisson::assemble_solution(p.n, p.tasks,
                                          r.outcome.report.spawner.final_payloads);
  poisson::PoissonConfig pc;
  pc.n = static_cast<std::uint32_t>(p.n);
  r.outcome.residual = poisson::poisson_relative_residual(pc, r.solution);

  const auto& net = r.outcome.report.net;
  r.sent_data = by_type(net.sent_by_type, core::msg::TaskData::kType);
  r.delivered_data = by_type(net.delivered_by_type, core::msg::TaskData::kType);
  r.wire_bytes = net.bytes_sent;
  r.wire_frames = net.delivered;
  r.comm = r.outcome.report.comm;
  return r;
}

bool bitwise_equal(const linalg::Vector& a, const linalg::Vector& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

double max_abs_diff(const linalg::Vector& a, const linalg::Vector& b) {
  if (a.size() != b.size()) return -1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

void print_run_json(const char* key, const CommRun& r, bool last) {
  std::printf(
      "      \"%s\": {\n"
      "        \"completed\": %s,\n"
      "        \"execution_time_s\": %.3f,\n"
      "        \"residual\": %.6e,\n"
      "        \"sent_data_messages\": %" PRIu64 ",\n"
      "        \"delivered_data_messages\": %" PRIu64 ",\n"
      "        \"delivered_wire_frames\": %" PRIu64 ",\n"
      "        \"wire_bytes\": %" PRIu64 ",\n"
      "        \"coalesced\": %" PRIu64 ",\n"
      "        \"dropped_data\": %" PRIu64 ",\n"
      "        \"batches\": %" PRIu64 ",\n"
      "        \"batched_messages\": %" PRIu64 ",\n"
      "        \"queue_high_water_bytes\": %" PRIu64 ",\n"
      "        \"failures_detected\": %" PRIu64 ",\n"
      "        \"replacements\": %" PRIu64 "\n"
      "      }%s\n",
      key, r.outcome.completed ? "true" : "false", r.outcome.execution_time,
      r.outcome.residual, r.sent_data, r.delivered_data, r.wire_frames,
      r.wire_bytes, r.comm.coalesced, r.comm.dropped_data, r.comm.batches,
      r.comm.batched_messages, r.comm.queue_high_water_bytes,
      r.outcome.report.spawner.failures_detected,
      r.outcome.report.spawner.replacements, last ? "" : ",");
}

double reduction(std::uint64_t off, std::uint64_t on) {
  return off == 0 ? 0.0
                  : 1.0 - static_cast<double>(on) / static_cast<double>(off);
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("bench_comm",
                "Staleness-aware comm path: delivered data messages and wire "
                "bytes with coalescing off vs on (slow- and flaky-consumer "
                "scenarios) plus Poisson solution parity");
  auto smoke = flags.add_bool("smoke", false, "small fast run for CI");
  auto seed = flags.add_uint("seed", 42, "base seed");
  auto flush_ms = flags.add_int("flush_ms", 250, "link flush window (ms)");
  auto work_div = flags.add_int(
      "work_div", 0,
      "divide the paper work_scale by this: faster producers (0 = auto)");
  flags.parse(argc, argv);

  ExperimentParams p;
  p.seed = *seed;
  if (*smoke) {
    p.n = 48;
    p.tasks = 6;
    p.daemons = 10;
    p.super_peers = 2;
    // Tight detection even in smoke: with coalescing OFF the stale backlog
    // yields small per-flush updates that would trip a loose update-distance
    // criterion long before the residual settles, breaking the parity check.
    p.convergence_threshold = 1e-9;
    p.stable_required = 5;
    p.inner_tolerance = 1e-10;
    p.max_sim_time = 2000.0;
  } else {
    // Mid-size: the largest configuration where BOTH ablation arms still
    // converge. Past this (n = 96, 16 tasks) the non-coalesced arm saturates
    // the serialized wire — its backlog and staleness grow without bound, on
    // top of burst drains stalling daemons past the failure-detection
    // timeouts — and it never reaches the threshold. That is the qualitative
    // point of the PR, but no longer a two-sided measurement.
    p.n = 64;
    p.tasks = 8;
    p.daemons = 16;
    p.super_peers = 3;
    // Tight thresholds: both ablation arms iterate to solver-precision
    // convergence so the parity comparison is meaningful.
    p.convergence_threshold = 1e-9;
    p.stable_required = 5;
    p.inner_tolerance = 1e-10;
    p.max_sim_time = 4000.0;
  }
  // Fast-producer regime: shrink the per-iteration compute so tasks iterate
  // every ~10-40 ms against a 250 ms flush cadence. Each flush window then
  // holds several superseded boundary lines per stream — the slow-consumer
  // pileup that latest-wins coalescing exists to absorb. (The paper-ratio
  // work_scale would put the iteration period at the window length, where
  // there is rarely anything to coalesce.) The divisor is calibrated per
  // grid so the fastest producers stay under the serialized wire's drain
  // rate; past that the non-coalesced arm's backlog (and thus staleness)
  // grows without bound and it simply never converges.
  const double divisor =
      *work_div > 0 ? static_cast<double>(*work_div) : 8.0;
  p.work_scale /= divisor;
  // Checkpoint cadence scaled to the fast iteration rate (the paper's
  // every-5 assumes ~0.5 s iterations; at 20-40 ms it would checkpoint
  // every ~0.15 s and backup traffic would swamp the wire-byte metric).
  p.checkpoint_every = 50;

  // Slow-consumer comm regime: flush windows several times the iteration
  // period, one frame in flight per link. The heterogeneous fleet
  // (100..300 MFLOPS, 100 Mb/s vs 1 Gb/s NICs) adds a 3:1 producer speed
  // spread on top, so superseded boundary lines pile up on the links —
  // exactly where latest-wins coalescing should pay.
  core::CommConfig comm_off;
  comm_off.coalesce = false;
  comm_off.flush_window = static_cast<double>(*flush_ms) / 1000.0;
  comm_off.serialize_links = true;
  core::CommConfig comm_on = comm_off;
  comm_on.coalesce = true;

  std::fprintf(stderr, "== slow-consumer: coalescing OFF ==\n");
  const CommRun slow_off = run_one(p, comm_off, /*relax_failure_detection=*/true);
  std::fprintf(stderr, "== slow-consumer: coalescing ON ==\n");
  const CommRun slow_on = run_one(p, comm_on, /*relax_failure_detection=*/true);
  std::fprintf(stderr, "== slow-consumer: coalescing ON (replay) ==\n");
  const CommRun slow_replay = run_one(p, comm_on, /*relax_failure_detection=*/true);

  // Flaky-consumer: daemons crash mid-run and reconnect ~20 s later as fresh
  // peers; queued frames to/from the victims die with them, replacements
  // rebuild from backups while traffic keeps flowing.
  ExperimentParams pf = p;
  pf.disconnections = *smoke ? 2 : 4;
  pf.disconnect_start = 20.0;
  pf.disconnect_horizon = *smoke ? 60.0 : 120.0;
  pf.reconnect_delay = 20.0;
  // This scenario measures fault-tolerance traffic, not parity (the parity
  // gate runs on the slow-consumer pair above), so it can afford the paper's
  // looser update-distance detection.
  pf.convergence_threshold = 1e-6;
  pf.stable_required = 3;
  pf.max_sim_time = *smoke ? 600.0 : 1500.0;
  // Milder producer rate than the slow-consumer regime, and no wire
  // serialization: with both hostile axes at once the non-coalesced arm
  // wedges for good — its post-recovery data backlog outgrows the serialized
  // wire and the recovery RPCs starve behind it, so the run never finishes.
  // Interesting (coalescing keeps churn survivable), but not a comparison;
  // here the churn axis is isolated so both arms complete.
  pf.work_scale = paper_scale_factor() * paper_scale_factor() / 4.0;
  core::CommConfig flaky_comm_off = comm_off;
  flaky_comm_off.serialize_links = false;
  core::CommConfig flaky_comm_on = comm_on;
  flaky_comm_on.serialize_links = false;

  std::fprintf(stderr, "== flaky-consumer: coalescing OFF ==\n");
  const CommRun flaky_off = run_one(pf, flaky_comm_off);
  std::fprintf(stderr, "== flaky-consumer: coalescing ON ==\n");
  const CommRun flaky_on = run_one(pf, flaky_comm_on);

  const double slow_msg_reduction =
      reduction(slow_off.delivered_data, slow_on.delivered_data);
  const double slow_byte_reduction =
      reduction(slow_off.wire_bytes, slow_on.wire_bytes);
  const double flaky_msg_reduction =
      reduction(flaky_off.delivered_data, flaky_on.delivered_data);
  const double flaky_byte_reduction =
      reduction(flaky_off.wire_bytes, flaky_on.wire_bytes);

  const bool replay_bitwise = bitwise_equal(slow_on.solution, slow_replay.solution);
  const double off_on_diff = max_abs_diff(slow_off.solution, slow_on.solution);
  const bool parity_ok = replay_bitwise && slow_off.outcome.completed &&
                         slow_on.outcome.completed &&
                         slow_off.outcome.residual < 1e-4 &&
                         slow_on.outcome.residual < 1e-4;

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_comm\",\n");
  std::printf("  \"smoke\": %s,\n", *smoke ? "true" : "false");
  std::printf("  \"params\": {\"n\": %zu, \"tasks\": %u, \"daemons\": %zu, "
              "\"seed\": %" PRIu64 ", \"flush_window_s\": %.3f},\n",
              p.n, p.tasks, p.daemons, static_cast<std::uint64_t>(*seed),
              comm_on.flush_window);
  std::printf("  \"slow_consumer\": {\n");
  std::printf("    \"serialize_links\": true,\n");
  std::printf("    \"runs\": {\n");
  print_run_json("coalesce_off", slow_off, false);
  print_run_json("coalesce_on", slow_on, true);
  std::printf("    },\n");
  std::printf("    \"data_message_reduction\": %.4f,\n", slow_msg_reduction);
  std::printf("    \"wire_byte_reduction\": %.4f\n", slow_byte_reduction);
  std::printf("  },\n");
  std::printf("  \"flaky_consumer\": {\n");
  std::printf("    \"serialize_links\": false,\n");
  std::printf("    \"disconnections\": %zu,\n", pf.disconnections);
  std::printf("    \"runs\": {\n");
  print_run_json("coalesce_off", flaky_off, false);
  print_run_json("coalesce_on", flaky_on, true);
  std::printf("    },\n");
  std::printf("    \"data_message_reduction\": %.4f,\n", flaky_msg_reduction);
  std::printf("    \"wire_byte_reduction\": %.4f\n", flaky_byte_reduction);
  std::printf("  },\n");
  std::printf("  \"parity\": {\n");
  std::printf(
      "    \"note\": \"replay_bitwise: same-seed coalesced rerun reproduces "
      "the solution bit-for-bit (memcmp over doubles). off_vs_on: different "
      "async trajectories converge into the same solver-tolerance ball, "
      "compared against the non-coalesced run's converged answer.\",\n");
  std::printf("    \"replay_bitwise\": %s,\n", replay_bitwise ? "true" : "false");
  std::printf("    \"off_vs_on_max_abs_diff\": %.6e,\n", off_on_diff);
  std::printf("    \"residual_off\": %.6e,\n", slow_off.outcome.residual);
  std::printf("    \"residual_on\": %.6e,\n", slow_on.outcome.residual);
  std::printf("    \"ok\": %s\n", parity_ok ? "true" : "false");
  std::printf("  }\n");
  std::printf("}\n");

  std::fprintf(stderr,
               "\nslow-consumer : data msgs %" PRIu64 " -> %" PRIu64
               " (-%.1f%%), wire bytes %" PRIu64 " -> %" PRIu64 " (-%.1f%%)\n",
               slow_off.delivered_data, slow_on.delivered_data,
               100.0 * slow_msg_reduction, slow_off.wire_bytes,
               slow_on.wire_bytes, 100.0 * slow_byte_reduction);
  std::fprintf(stderr,
               "flaky-consumer: data msgs %" PRIu64 " -> %" PRIu64
               " (-%.1f%%), wire bytes %" PRIu64 " -> %" PRIu64 " (-%.1f%%)\n",
               flaky_off.delivered_data, flaky_on.delivered_data,
               100.0 * flaky_msg_reduction, flaky_off.wire_bytes,
               flaky_on.wire_bytes, 100.0 * flaky_byte_reduction);
  std::fprintf(stderr,
               "parity        : replay bitwise %s, off-vs-on max|diff| %.3e, "
               "residuals %.3e / %.3e -> %s\n",
               replay_bitwise ? "yes" : "NO", off_on_diff,
               slow_off.outcome.residual, slow_on.outcome.residual,
               parity_ok ? "OK" : "FAIL");

  const bool pass = parity_ok && slow_msg_reduction >= 0.30 &&
                    slow_byte_reduction > 0.0;
  std::fprintf(stderr, "acceptance    : %s (need >=30%% data-message "
               "reduction, reduced bytes, parity)\n",
               pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
