// Iteration hot-path ablation: one layer at a time —
//   fused      : single-pass SpMV+reduction kernels vs the unfused sequences
//                (micro timings + CG end-to-end), with the pool-size-1
//                bit-identity gate (memcmp over doubles);
//   simd       : the runtime-dispatched vector kernels (linalg/simd.hpp) off
//                vs on — SpMV, the fused reductions, BLAS-1 dot, the SELL
//                padded layout — with hard gates: element-wise off-vs-on
//                bit-identity, on-path bitwise replay, and CG off-vs-on
//                parity at solver precision. `--simd-level` prints the
//                CPUID-detected dispatch level and exits (run_bench.sh
//                stamps it into the result meta);
//   early_send : boundary-preview publish off vs on in the deployment sim
//                (execution time, iterations, preview traffic) with the same
//                parity discipline as bench_comm — off-vs-on agreement at
//                solver precision plus a bitwise same-seed replay gate;
//   pool       : send-buffer recycling off vs on (make_message encode loop
//                timing + BufferPool counters from a full deployment run).
//
// Output: JSON on stdout (run_bench.sh captures it into BENCH_hotpath.json
// and stamps provenance); human summary on stderr. Exit 0 iff every hard
// gate (bit-identity, parity, replay) holds.
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "core/messages.hpp"
#include "linalg/cg.hpp"
#include "linalg/csr_sell.hpp"
#include "linalg/fused.hpp"
#include "linalg/simd.hpp"
#include "net/message.hpp"
#include "serial/buffer_pool.hpp"
#include "support/flags.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

using namespace jacepp;
using namespace jacepp::bench;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Average wall time of fn() over `repeats` runs (one warmup), in ns.
template <typename Fn>
double time_ns(std::size_t repeats, Fn&& fn) {
  fn();  // warmup: touch the pages, warm the pool
  const double start = now_ms();
  for (std::size_t i = 0; i < repeats; ++i) fn();
  return (now_ms() - start) * 1e6 / static_cast<double>(repeats);
}

bool bitwise_equal(const linalg::Vector& a, const linalg::Vector& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

double max_abs_diff(const linalg::Vector& a, const linalg::Vector& b) {
  if (a.size() != b.size()) return -1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

linalg::Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Vector v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

// --- Layer 1: fused kernels ------------------------------------------------

struct KernelRow {
  double fused_ns = 0.0;
  double unfused_ns = 0.0;
  int passes_fused = 0;    ///< memory passes over the dominant array
  int passes_unfused = 0;
  bool bit_identical = false;  ///< pool-1 fused == unfused, memcmp
};

void print_kernel_row(const char* key, const KernelRow& r, bool last) {
  std::printf(
      "      \"%s\": {\"fused_ns\": %.0f, \"unfused_ns\": %.0f, "
      "\"speedup\": %.3f, \"passes_fused\": %d, \"passes_unfused\": %d, "
      "\"bit_identical_pool1\": %s}%s\n",
      key, r.fused_ns, r.unfused_ns,
      r.fused_ns > 0.0 ? r.unfused_ns / r.fused_ns : 0.0, r.passes_fused,
      r.passes_unfused, r.bit_identical ? "true" : "false", last ? "" : ",");
}

struct FusedReport {
  std::size_t side = 0;
  std::size_t repeats = 0;
  KernelRow residual;
  KernelRow dot;
  KernelRow axpy;
  double cg_fused_ms = 0.0;
  double cg_unfused_ms = 0.0;
  std::size_t cg_iterations = 0;
  bool cg_bit_identical = false;
  bool ok = false;
};

FusedReport run_fused(std::size_t side, std::size_t repeats) {
  // Pool size 1 throughout: the fusion payoff is fewer memory passes, which
  // shows serially, and serial is where the bit-identity contract is exact.
  ThreadPool pool(1);
  ScopedComputePool scoped(pool);

  FusedReport rep;
  rep.side = side;
  rep.repeats = repeats;
  const auto a = poisson::assemble_laplacian(side);
  const std::size_t n = a.rows();
  const linalg::Vector x = random_vector(n, 1001);
  const linalg::Vector b = random_vector(n, 1002);

  // r = b - Ax, ||r||: fused single pass vs multiply + residual + norm2.
  {
    linalg::Vector r_f;
    linalg::Vector ax;
    linalg::Vector r_u;
    double nf = 0.0;
    double nu = 0.0;
    rep.residual.fused_ns = time_ns(
        repeats, [&] { nf = linalg::spmv_residual_norm2(a, x, b, r_f); });
    rep.residual.unfused_ns = time_ns(repeats, [&] {
      a.multiply(x, ax);
      linalg::residual(b, ax, r_u);
      nu = linalg::norm2(r_u);
    });
    rep.residual.passes_fused = 1;
    rep.residual.passes_unfused = 3;
    rep.residual.bit_identical = bitwise_equal(r_f, r_u) && nf == nu;
  }

  // y = Ax, <x,y>: fused vs multiply + dot.
  {
    linalg::Vector y_f;
    linalg::Vector y_u;
    double df = 0.0;
    double du = 0.0;
    rep.dot.fused_ns =
        time_ns(repeats, [&] { df = linalg::spmv_dot(a, x, y_f); });
    rep.dot.unfused_ns = time_ns(repeats, [&] {
      a.multiply(x, y_u);
      du = linalg::dot(x, y_u);
    });
    rep.dot.passes_fused = 1;
    rep.dot.passes_unfused = 2;
    rep.dot.bit_identical = bitwise_equal(y_f, y_u) && df == du;
  }

  // y += alpha x, ||y||: fused vs axpy + norm2. The mutation accumulates, but
  // both arms run the same count so the timing comparison stays fair; the
  // bit-identity check uses fresh copies.
  {
    linalg::Vector y_f = b;
    linalg::Vector y_u = b;
    double nf = 0.0;
    double nu = 0.0;
    rep.axpy.fused_ns =
        time_ns(repeats, [&] { nf = linalg::axpy_norm2(1e-6, x, y_f); });
    rep.axpy.unfused_ns = time_ns(repeats, [&] {
      linalg::axpy(1e-6, x, y_u);
      nu = linalg::norm2(y_u);
    });
    linalg::Vector cf = b;
    linalg::Vector cu = b;
    const double one_f = linalg::axpy_norm2(-0.5, x, cf);
    linalg::axpy(-0.5, x, cu);
    const double one_u = linalg::norm2(cu);
    rep.axpy.passes_fused = 1;
    rep.axpy.passes_unfused = 2;
    rep.axpy.bit_identical = bitwise_equal(cf, cu) && one_f == one_u;
  }

  // CG end-to-end: same matrix, zero start, fixed tolerance.
  {
    linalg::CgOptions opt;
    opt.tolerance = 1e-8;
    opt.max_iterations = 10 * n;
    linalg::Vector x_f;
    linalg::Vector x_u;
    linalg::CgResult res_f;
    linalg::CgResult res_u;
    opt.fused = true;
    rep.cg_fused_ms = time_ns(3, [&] {
                        x_f.assign(n, 0.0);
                        res_f = linalg::conjugate_gradient(a, b, x_f, opt);
                      }) /
                      1e6;
    opt.fused = false;
    rep.cg_unfused_ms = time_ns(3, [&] {
                          x_u.assign(n, 0.0);
                          res_u = linalg::conjugate_gradient(a, b, x_u, opt);
                        }) /
                        1e6;
    rep.cg_iterations = res_f.iterations;
    rep.cg_bit_identical = bitwise_equal(x_f, x_u) &&
                           res_f.iterations == res_u.iterations &&
                           res_f.residual_norm == res_u.residual_norm;
  }

  rep.ok = rep.residual.bit_identical && rep.dot.bit_identical &&
           rep.axpy.bit_identical && rep.cg_bit_identical;
  return rep;
}

// --- Layer 1b: SIMD dispatch -------------------------------------------------

struct SimdKernelRow {
  double off_ns = 0.0;
  double on_ns = 0.0;
};

void print_simd_row(const char* key, const SimdKernelRow& r, bool last) {
  std::printf("      \"%s\": {\"off_ns\": %.0f, \"on_ns\": %.0f, "
              "\"speedup\": %.3f}%s\n",
              key, r.off_ns, r.on_ns,
              r.on_ns > 0.0 ? r.off_ns / r.on_ns : 0.0, last ? "" : ",");
}

struct SimdReport {
  std::size_t side = 0;
  std::size_t repeats = 0;
  SimdKernelRow spmv;
  SimdKernelRow spmv_residual;
  SimdKernelRow spmv_dot;
  SimdKernelRow axpy_norm2;
  SimdKernelRow dot;
  SimdKernelRow sell_spmv;  ///< off = CSR simd-on, on = SELL simd-on
  double sell_fill_ratio = 0.0;
  double cg_off_ms = 0.0;
  double cg_on_ms = 0.0;
  double cg_parity_diff = -1.0;
  bool elementwise_bit_identical = false;
  bool replay_bitwise = false;
  double spmv_off_on_diff = -1.0;
  bool ok = false;
};

SimdReport run_simd(std::size_t side, std::size_t repeats) {
  // Pool size 1: isolates the vector-unit effect from thread scaling, and is
  // where the element-wise bit-identity gate is exact.
  ThreadPool pool(1);
  ScopedComputePool scoped(pool);

  SimdReport rep;
  rep.side = side;
  rep.repeats = repeats;
  const auto a = poisson::assemble_laplacian(side);
  const std::size_t n = a.rows();
  const linalg::Vector x = random_vector(n, 2001);
  const linalg::Vector b = random_vector(n, 2002);

  const auto timed_both = [&](SimdKernelRow& row, auto&& fn) {
    linalg::simd::set_enabled(false);
    row.off_ns = time_ns(repeats, fn);
    linalg::simd::set_enabled(true);
    row.on_ns = time_ns(repeats, fn);
    linalg::simd::set_enabled(false);
  };

  linalg::Vector y, r;
  double acc = 0.0;
  timed_both(rep.spmv, [&] { a.multiply(x, y); });
  timed_both(rep.spmv_residual,
             [&] { acc = linalg::spmv_residual_norm2(a, x, b, r); });
  timed_both(rep.spmv_dot, [&] { acc = linalg::spmv_dot(a, x, y); });
  {
    linalg::Vector ym = b;
    timed_both(rep.axpy_norm2,
               [&] { acc = linalg::axpy_norm2(1e-9, x, ym); });
  }
  timed_both(rep.dot, [&] { acc = linalg::dot(x, b); });
  (void)acc;

  // SELL vs CSR, both with the vector unit on: the layout's own contribution.
  {
    const linalg::SellMatrix sell(a);
    rep.sell_fill_ratio = sell.fill_ratio();
    linalg::simd::set_enabled(true);
    rep.sell_spmv.off_ns = time_ns(repeats, [&] { a.multiply(x, y); });
    rep.sell_spmv.on_ns = time_ns(repeats, [&] { sell.multiply(x, y); });
    linalg::simd::set_enabled(false);
  }

  // Gate 1: element-wise kernels must be bit-identical off vs on.
  {
    linalg::Vector y_off = b;
    linalg::Vector y_on = b;
    linalg::simd::set_enabled(false);
    linalg::axpy(0.37, x, y_off);
    linalg::simd::set_enabled(true);
    linalg::axpy(0.37, x, y_on);
    linalg::simd::set_enabled(false);
    rep.elementwise_bit_identical = bitwise_equal(y_off, y_on);
  }

  // Gate 2: on-path bitwise replay + off-vs-on SpMV parity.
  {
    linalg::Vector y_off, y_on, y_replay;
    linalg::simd::set_enabled(false);
    a.multiply(x, y_off);
    linalg::simd::set_enabled(true);
    a.multiply(x, y_on);
    a.multiply(x, y_replay);
    linalg::simd::set_enabled(false);
    rep.replay_bitwise = bitwise_equal(y_on, y_replay);
    rep.spmv_off_on_diff = max_abs_diff(y_off, y_on);
  }

  // Gate 3: CG end-to-end, off vs on, parity at solver precision.
  {
    linalg::CgOptions opt;
    opt.tolerance = 1e-8;
    opt.max_iterations = 10 * n;
    linalg::Vector x_off, x_on;
    linalg::simd::set_enabled(false);
    rep.cg_off_ms = time_ns(3, [&] {
                      x_off.assign(n, 0.0);
                      (void)linalg::conjugate_gradient(a, b, x_off, opt);
                    }) /
                    1e6;
    linalg::simd::set_enabled(true);
    rep.cg_on_ms = time_ns(3, [&] {
                     x_on.assign(n, 0.0);
                     (void)linalg::conjugate_gradient(a, b, x_on, opt);
                   }) /
                   1e6;
    linalg::simd::set_enabled(false);
    rep.cg_parity_diff = max_abs_diff(x_off, x_on);
  }

  rep.ok = rep.elementwise_bit_identical && rep.replay_bitwise &&
           rep.spmv_off_on_diff >= 0.0 && rep.spmv_off_on_diff < 1e-9 &&
           rep.cg_parity_diff >= 0.0 && rep.cg_parity_diff < 1e-6;
  return rep;
}

// --- Layer 2: early halo publish -------------------------------------------

struct EarlyRun {
  ExperimentOutcome outcome;
  linalg::Vector solution;
  std::uint64_t sent_data = 0;
  std::uint64_t iterations = 0;
};

EarlyRun run_early(const ExperimentParams& p, bool early_send) {
  auto config = make_config(p);
  config.perf.early_send = early_send;
  core::SimDeployment deployment(config);
  EarlyRun r;
  r.outcome.report = deployment.run();
  r.outcome.completed = r.outcome.report.spawner.completed;
  r.outcome.execution_time = r.outcome.report.spawner.execution_time();
  r.solution = poisson::assemble_solution(p.n, p.tasks,
                                          r.outcome.report.spawner.final_payloads);
  poisson::PoissonConfig pc;
  pc.n = static_cast<std::uint32_t>(p.n);
  r.outcome.residual = poisson::poisson_relative_residual(pc, r.solution);
  const auto& sent = r.outcome.report.net.sent_by_type;
  const auto it = sent.find(core::msg::TaskData::kType);
  r.sent_data = it == sent.end() ? 0 : it->second;
  r.iterations = r.outcome.report.total_iterations_completed;
  return r;
}

void print_early_run(const char* key, const EarlyRun& r, bool last) {
  std::printf(
      "      \"%s\": {\"completed\": %s, \"execution_time_s\": %.3f, "
      "\"residual\": %.6e, \"iterations\": %" PRIu64
      ", \"sent_data_messages\": %" PRIu64 "}%s\n",
      key, r.outcome.completed ? "true" : "false", r.outcome.execution_time,
      r.outcome.residual, r.iterations, r.sent_data, last ? "" : ",");
}

// --- Layer 3: pooled send buffers ------------------------------------------

struct PoolReport {
  double pooled_ns = 0.0;
  double unpooled_ns = 0.0;
  serial::BufferPool::Stats deploy_stats;  ///< counters from the early-off run
  bool deploy_completed = false;
};

PoolReport run_pool(const ExperimentParams& p, std::size_t encode_repeats) {
  PoolReport rep;
  auto& pool = serial::BufferPool::instance();

  // Encode loop: the per-message send path, pool on vs off. A boundary line
  // at the paper's n = 2000 is the payload.
  core::msg::TaskData data;
  data.app_id = 1;
  data.from_task = 0;
  data.to_task = 1;
  serial::Writer w;
  w.f64_vector(random_vector(2000, 7));
  data.payload = w.take();
  pool.set_enabled(true);
  pool.reset();
  rep.pooled_ns = time_ns(encode_repeats, [&] {
    const auto m = net::make_message(data);
    (void)m;
  });
  pool.set_enabled(false);
  rep.unpooled_ns = time_ns(encode_repeats, [&] {
    const auto m = net::make_message(data);
    (void)m;
  });
  pool.set_enabled(true);
  pool.reset();

  // Full deployment run with pooling on: how much of the real message
  // traffic the free list absorbs once warm.
  auto config = make_config(p);
  config.perf.pool_buffers = true;
  core::SimDeployment deployment(config);
  const auto report = deployment.run();
  rep.deploy_completed = report.spawner.completed;
  rep.deploy_stats = pool.stats();
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("bench_hotpath",
                "Iteration hot-path ablation: fused kernels, early halo "
                "publish and pooled send buffers, one layer at a time");
  auto smoke = flags.add_bool("smoke", false, "small fast run for CI");
  auto seed = flags.add_uint("seed", 42, "base seed");
  auto simd_level = flags.add_bool(
      "simd-level", false,
      "print the CPUID-detected SIMD dispatch level and exit");
  flags.parse(argc, argv);

  if (*simd_level) {
    std::printf("%s\n",
                linalg::simd::level_name(linalg::simd::detected_level()));
    return 0;
  }

  const std::size_t side = *smoke ? 64 : 160;
  const std::size_t repeats = *smoke ? 20 : 60;

  std::fprintf(stderr, "== fused kernels (side %zu, pool 1) ==\n", side);
  const FusedReport fused = run_fused(side, repeats);

  std::fprintf(stderr, "== simd dispatch (detected %s) ==\n",
               linalg::simd::level_name(linalg::simd::detected_level()));
  const SimdReport simd = run_simd(side, repeats);

  ExperimentParams p;
  p.seed = *seed;
  if (*smoke) {
    p.n = 48;
    p.tasks = 6;
    p.daemons = 10;
    p.super_peers = 2;
    p.max_sim_time = 2000.0;
  } else {
    p.n = 96;
    p.tasks = 12;
    p.daemons = 20;
    p.super_peers = 3;
    p.max_sim_time = 4000.0;
  }
  // Solver-precision convergence so the off-vs-on parity comparison means
  // something (same discipline as bench_comm).
  p.convergence_threshold = 1e-9;
  p.stable_required = 5;
  p.inner_tolerance = 1e-10;

  std::fprintf(stderr, "== early send OFF ==\n");
  const EarlyRun early_off = run_early(p, false);
  std::fprintf(stderr, "== early send ON ==\n");
  const EarlyRun early_on = run_early(p, true);
  std::fprintf(stderr, "== early send ON (replay) ==\n");
  const EarlyRun early_replay = run_early(p, true);

  const bool replay_bitwise =
      bitwise_equal(early_on.solution, early_replay.solution);
  const double off_on_diff = max_abs_diff(early_off.solution, early_on.solution);
  const bool early_parity = replay_bitwise && early_off.outcome.completed &&
                            early_on.outcome.completed &&
                            early_off.outcome.residual < 1e-4 &&
                            early_on.outcome.residual < 1e-4 &&
                            off_on_diff >= 0.0 && off_on_diff < 1e-4;

  std::fprintf(stderr, "== buffer pool ==\n");
  const PoolReport pool = run_pool(p, *smoke ? 2000 : 10000);
  const std::uint64_t pool_acquires =
      pool.deploy_stats.reuses + pool.deploy_stats.misses;
  const double reuse_rate =
      pool_acquires == 0
          ? 0.0
          : static_cast<double>(pool.deploy_stats.reuses) /
                static_cast<double>(pool_acquires);

  const bool pass =
      fused.ok && simd.ok && early_parity && pool.deploy_completed;

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_hotpath\",\n");
  std::printf("  \"smoke\": %s,\n", *smoke ? "true" : "false");
  std::printf("  \"fused\": {\n");
  std::printf("    \"grid_side\": %zu,\n", fused.side);
  std::printf("    \"repeats\": %zu,\n", fused.repeats);
  std::printf("    \"kernels\": {\n");
  print_kernel_row("spmv_residual_norm2", fused.residual, false);
  print_kernel_row("spmv_dot", fused.dot, false);
  print_kernel_row("axpy_norm2", fused.axpy, true);
  std::printf("    },\n");
  std::printf("    \"cg\": {\"fused_ms\": %.3f, \"unfused_ms\": %.3f, "
              "\"speedup\": %.3f, \"iterations\": %zu, "
              "\"bit_identical_pool1\": %s},\n",
              fused.cg_fused_ms, fused.cg_unfused_ms,
              fused.cg_fused_ms > 0.0 ? fused.cg_unfused_ms / fused.cg_fused_ms
                                      : 0.0,
              fused.cg_iterations, fused.cg_bit_identical ? "true" : "false");
  std::printf("    \"ok\": %s\n", fused.ok ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"simd\": {\n");
  std::printf("    \"level_detected\": \"%s\",\n",
              linalg::simd::level_name(linalg::simd::detected_level()));
  std::printf("    \"grid_side\": %zu,\n", simd.side);
  std::printf("    \"repeats\": %zu,\n", simd.repeats);
  std::printf("    \"kernels\": {\n");
  print_simd_row("spmv", simd.spmv, false);
  print_simd_row("spmv_residual_norm2", simd.spmv_residual, false);
  print_simd_row("spmv_dot", simd.spmv_dot, false);
  print_simd_row("axpy_norm2", simd.axpy_norm2, false);
  print_simd_row("dot", simd.dot, true);
  std::printf("    },\n");
  std::printf("    \"sell\": {\"fill_ratio\": %.4f, \"csr_on_ns\": %.0f, "
              "\"sell_on_ns\": %.0f, \"speedup\": %.3f},\n",
              simd.sell_fill_ratio, simd.sell_spmv.off_ns,
              simd.sell_spmv.on_ns,
              simd.sell_spmv.on_ns > 0.0
                  ? simd.sell_spmv.off_ns / simd.sell_spmv.on_ns
                  : 0.0);
  std::printf("    \"cg\": {\"off_ms\": %.3f, \"on_ms\": %.3f, "
              "\"speedup\": %.3f, \"parity_max_abs_diff\": %.6e},\n",
              simd.cg_off_ms, simd.cg_on_ms,
              simd.cg_on_ms > 0.0 ? simd.cg_off_ms / simd.cg_on_ms : 0.0,
              simd.cg_parity_diff);
  std::printf("    \"elementwise_bit_identical\": %s,\n",
              simd.elementwise_bit_identical ? "true" : "false");
  std::printf("    \"replay_bitwise\": %s,\n",
              simd.replay_bitwise ? "true" : "false");
  std::printf("    \"spmv_off_vs_on_max_abs_diff\": %.6e,\n",
              simd.spmv_off_on_diff);
  std::printf("    \"ok\": %s\n", simd.ok ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"early_send\": {\n");
  std::printf("    \"params\": {\"n\": %zu, \"tasks\": %u, \"daemons\": %zu, "
              "\"seed\": %" PRIu64 "},\n",
              p.n, p.tasks, p.daemons, static_cast<std::uint64_t>(*seed));
  std::printf("    \"runs\": {\n");
  print_early_run("off", early_off, false);
  print_early_run("on", early_on, true);
  std::printf("    },\n");
  std::printf("    \"execution_time_change\": %.4f,\n",
              early_off.outcome.execution_time > 0.0
                  ? early_on.outcome.execution_time /
                            early_off.outcome.execution_time -
                        1.0
                  : 0.0);
  std::printf("    \"replay_bitwise\": %s,\n", replay_bitwise ? "true" : "false");
  std::printf("    \"off_vs_on_max_abs_diff\": %.6e,\n", off_on_diff);
  std::printf("    \"ok\": %s\n", early_parity ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"pool\": {\n");
  std::printf("    \"encode\": {\"pooled_ns\": %.0f, \"unpooled_ns\": %.0f, "
              "\"speedup\": %.3f},\n",
              pool.pooled_ns, pool.unpooled_ns,
              pool.pooled_ns > 0.0 ? pool.unpooled_ns / pool.pooled_ns : 0.0);
  std::printf("    \"deployment\": {\"completed\": %s, \"reuses\": %" PRIu64
              ", \"misses\": %" PRIu64 ", \"returns\": %" PRIu64
              ", \"dropped\": %" PRIu64 ", \"reuse_rate\": %.4f}\n",
              pool.deploy_completed ? "true" : "false",
              pool.deploy_stats.reuses, pool.deploy_stats.misses,
              pool.deploy_stats.returns, pool.deploy_stats.dropped, reuse_rate);
  std::printf("  },\n");
  std::printf("  \"ok\": %s\n", pass ? "true" : "false");
  std::printf("}\n");

  std::fprintf(stderr,
               "\nfused      : residual %.0f->%.0f ns, dot %.0f->%.0f ns, "
               "axpy %.0f->%.0f ns, cg %.2f->%.2f ms, bit-identical %s\n",
               fused.residual.unfused_ns, fused.residual.fused_ns,
               fused.dot.unfused_ns, fused.dot.fused_ns, fused.axpy.unfused_ns,
               fused.axpy.fused_ns, fused.cg_unfused_ms, fused.cg_fused_ms,
               fused.ok ? "yes" : "NO");
  std::fprintf(stderr,
               "simd       : %s; spmv %.0f->%.0f ns (%.2fx), residual "
               "%.0f->%.0f ns, dot %.0f->%.0f ns, sell spmv %.0f->%.0f ns, "
               "cg %.2f->%.2f ms, gates %s\n",
               linalg::simd::level_name(linalg::simd::detected_level()),
               simd.spmv.off_ns, simd.spmv.on_ns,
               simd.spmv.on_ns > 0.0 ? simd.spmv.off_ns / simd.spmv.on_ns
                                     : 0.0,
               simd.spmv_residual.off_ns, simd.spmv_residual.on_ns,
               simd.dot.off_ns, simd.dot.on_ns, simd.sell_spmv.off_ns,
               simd.sell_spmv.on_ns, simd.cg_off_ms, simd.cg_on_ms,
               simd.ok ? "yes" : "NO");
  std::fprintf(stderr,
               "early send : exec %.1f -> %.1f s, data msgs %" PRIu64
               " -> %" PRIu64 ", replay bitwise %s, off-vs-on |diff| %.3e\n",
               early_off.outcome.execution_time,
               early_on.outcome.execution_time, early_off.sent_data,
               early_on.sent_data, replay_bitwise ? "yes" : "NO", off_on_diff);
  std::fprintf(stderr,
               "pool       : encode %.0f -> %.0f ns, deployment reuse rate "
               "%.1f%% (%" PRIu64 " reuses / %" PRIu64 " acquires)\n",
               pool.unpooled_ns, pool.pooled_ns, 100.0 * reuse_rate,
               pool.deploy_stats.reuses, pool_acquires);
  std::fprintf(stderr, "acceptance : %s (bit-identity + parity + replay)\n",
               pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
