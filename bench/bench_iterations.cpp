// §7 in-text claim: without disconnections the Poisson run needs ~100 outer
// iterations at n=2000 but only ~40 at n=5000 — larger local systems raise
// the compute/communication ratio (Eq. 4), so fewer iterations are "useless"
// (performed without having received an update).
//
// This bench reports, per n: mean/max outer iterations at convergence, the
// execution time, and the true residual of the assembled solution. The
// paper's TREND (iterations decrease as n grows, for a fixed 80-peer
// decomposition) is the reproduction target; absolute counts depend on the
// stopping rule, which the paper does not specify (see EXPERIMENTS.md).
#include <cstdio>

#include "bench_common.hpp"
#include "support/flags.hpp"

using namespace jacepp;
using namespace jacepp::bench;

int main(int argc, char** argv) {
  FlagSet flags("bench_iterations",
                "Outer-iteration counts vs n without disconnections (§7)");
  auto tasks = flags.add_int("tasks", 80, "computing peers");
  auto seed = flags.add_uint("seed", 42, "seed");
  auto n_list = flags.add_string("n", "96,144,192,240", "sim grid sides");
  flags.parse(argc, argv);

  print_header("§7 iterations — outer iterations at convergence vs n (0 disc.)",
               "  n(sim)  n(paper)   iters(mean)  iters(max)   time_s   "
               "time/iter_s  residual");

  std::vector<std::size_t> ns;
  {
    const std::string& text = *n_list;
    std::size_t pos = 0;
    while (pos < text.size()) {
      const auto comma = text.find(',', pos);
      ns.push_back(std::stoul(text.substr(pos, comma - pos)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  double first_iters = 0.0;
  double last_iters = 0.0;
  for (const std::size_t n : ns) {
    ExperimentParams p;
    p.n = n;
    p.tasks = static_cast<std::uint32_t>(*tasks);
    p.seed = *seed;
    const auto outcome = run_experiment(p);
    if (!outcome.completed) {
      std::printf("  %6zu  %8zu   DID NOT CONVERGE\n", n, paper_n(n));
      continue;
    }
    const double mean_iters = outcome.report.spawner.mean_iteration();
    if (first_iters == 0.0) first_iters = mean_iters;
    last_iters = mean_iters;
    std::printf("  %6zu  %8zu   %11.1f  %10llu  %7.1f   %11.4f  %.2e\n", n,
                paper_n(n), mean_iters,
                static_cast<unsigned long long>(
                    outcome.report.spawner.max_iteration()),
                outcome.execution_time,
                outcome.execution_time / std::max(mean_iters, 1.0),
                outcome.residual);
    std::fflush(stdout);
  }

  if (first_iters > 0.0 && last_iters > 0.0) {
    std::printf(
        "\npaper check: iterations shrink as n grows (paper: ~100 → ~40, "
        "ratio 2.5x); measured ratio %.2fx.\n",
        first_iters / last_iters);
  }
  return 0;
}
