// Substrate microbenchmarks (google-benchmark): the kernels and runtime
// primitives everything else is built on.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "linalg/cg.hpp"
#include "linalg/csr.hpp"
#include "linalg/csr_sell.hpp"
#include "linalg/fused.hpp"
#include "linalg/simd.hpp"
#include "core/deadline_heap.hpp"
#include "core/messages.hpp"
#include "net/message.hpp"
#include "poisson/block_task.hpp"
#include "poisson/poisson.hpp"
#include "serial/serial.hpp"
#include "sim/event_queue.hpp"
#include "sim/world.hpp"
#include "support/queue.hpp"
#include "support/rng.hpp"

namespace {

using namespace jacepp;

void BM_SpMV(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = poisson::assemble_laplacian(n);
  linalg::Vector x(n * n, 1.0);
  linalg::Vector y(n * n);
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SpMV)->Arg(32)->Arg(64)->Arg(128);

/// Flips `perf.simd` on for one benchmark body; restores the default (off) so
/// row order never leaks dispatch state into the scalar rows above.
struct ScopedSimdOn {
  ScopedSimdOn() { linalg::simd::set_enabled(true); }
  ~ScopedSimdOn() { linalg::simd::set_enabled(false); }
};

void BM_SpMVSimd(benchmark::State& state) {
  ScopedSimdOn simd;
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = poisson::assemble_laplacian(n);
  linalg::Vector x(n * n, 1.0);
  linalg::Vector y(n * n);
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
  state.SetLabel(linalg::simd::level_name(linalg::simd::detected_level()));
}
BENCHMARK(BM_SpMVSimd)->Arg(32)->Arg(64)->Arg(128);

/// SELL padded layout with the vector unit on — compare against BM_SpMVSimd
/// (same matrix, CSR layout) for the layout's own contribution.
void BM_SpMVSellSimd(benchmark::State& state) {
  ScopedSimdOn simd;
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::SellMatrix a(poisson::assemble_laplacian(n));
  linalg::Vector x(n * n, 1.0);
  linalg::Vector y(n * n);
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
  state.SetLabel(linalg::simd::level_name(linalg::simd::detected_level()));
}
BENCHMARK(BM_SpMVSellSimd)->Arg(32)->Arg(64)->Arg(128);

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Vector x(n, 0.5);
  linalg::Vector y(n, 2.0);
  for (auto _ : state) {
    const double d = linalg::dot(x, y);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Dot)->Arg(4096)->Arg(65536);

void BM_DotSimd(benchmark::State& state) {
  ScopedSimdOn simd;
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Vector x(n, 0.5);
  linalg::Vector y(n, 2.0);
  for (auto _ : state) {
    const double d = linalg::dot(x, y);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(linalg::simd::level_name(linalg::simd::detected_level()));
}
BENCHMARK(BM_DotSimd)->Arg(4096)->Arg(65536);

// Unfused residual evaluation: r = b - Ax then ||r|| — three passes over the
// vectors. Pairs with BM_SpmvResidualFused below (one pass).
void BM_SpmvResidualUnfused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = poisson::assemble_laplacian(n);
  linalg::Vector x(n * n, 1.0);
  linalg::Vector b(n * n, 2.0);
  linalg::Vector ax(n * n);
  linalg::Vector r(n * n);
  for (auto _ : state) {
    a.multiply(x, ax);
    linalg::residual(b, ax, r);
    const double norm = linalg::norm2(r);
    benchmark::DoNotOptimize(norm);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SpmvResidualUnfused)->Arg(32)->Arg(64)->Arg(128);

void BM_SpmvResidualFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = poisson::assemble_laplacian(n);
  linalg::Vector x(n * n, 1.0);
  linalg::Vector b(n * n, 2.0);
  linalg::Vector r(n * n);
  for (auto _ : state) {
    const double norm = linalg::spmv_residual_norm2(a, x, b, r);
    benchmark::DoNotOptimize(norm);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SpmvResidualFused)->Arg(32)->Arg(64)->Arg(128);

void BM_SpmvResidualFusedSimd(benchmark::State& state) {
  ScopedSimdOn simd;
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = poisson::assemble_laplacian(n);
  linalg::Vector x(n * n, 1.0);
  linalg::Vector b(n * n, 2.0);
  linalg::Vector r(n * n);
  for (auto _ : state) {
    const double norm = linalg::spmv_residual_norm2(a, x, b, r);
    benchmark::DoNotOptimize(norm);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
  state.SetLabel(linalg::simd::level_name(linalg::simd::detected_level()));
}
BENCHMARK(BM_SpmvResidualFusedSimd)->Arg(32)->Arg(64)->Arg(128);

void BM_AxpyNorm2Unfused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Vector x(n, 1.0 / static_cast<double>(n));
  linalg::Vector y(n, 1.0);
  for (auto _ : state) {
    linalg::axpy(1e-9, x, y);
    const double norm = linalg::norm2(y);
    benchmark::DoNotOptimize(norm);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AxpyNorm2Unfused)->Arg(4096)->Arg(65536);

void BM_AxpyNorm2Fused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Vector x(n, 1.0 / static_cast<double>(n));
  linalg::Vector y(n, 1.0);
  for (auto _ : state) {
    const double norm = linalg::axpy_norm2(1e-9, x, y);
    benchmark::DoNotOptimize(norm);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AxpyNorm2Fused)->Arg(4096)->Arg(65536);

void BM_AxpyNorm2FusedSimd(benchmark::State& state) {
  ScopedSimdOn simd;
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Vector x(n, 1.0 / static_cast<double>(n));
  linalg::Vector y(n, 1.0);
  for (auto _ : state) {
    const double norm = linalg::axpy_norm2(1e-9, x, y);
    benchmark::DoNotOptimize(norm);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(linalg::simd::level_name(linalg::simd::detected_level()));
}
BENCHMARK(BM_AxpyNorm2FusedSimd)->Arg(4096)->Arg(65536);

void BM_ConjugateGradient(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto mp = poisson::make_manufactured_problem(n, 7);
  linalg::CgOptions options;
  options.tolerance = 1e-8;
  options.max_iterations = 10 * n * n;
  for (auto _ : state) {
    linalg::Vector x;
    const auto result =
        linalg::conjugate_gradient(mp.problem.a, mp.problem.b, x, options);
    benchmark::DoNotOptimize(result.residual_norm);
  }
}
BENCHMARK(BM_ConjugateGradient)->Arg(16)->Arg(32)->Arg(64);

// Same solve with the fused kernels disabled (CgOptions::fused = false): the
// pre-fusion hot path, kept as the ablation baseline.
void BM_ConjugateGradientUnfused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto mp = poisson::make_manufactured_problem(n, 7);
  linalg::CgOptions options;
  options.tolerance = 1e-8;
  options.max_iterations = 10 * n * n;
  options.fused = false;
  for (auto _ : state) {
    linalg::Vector x;
    const auto result =
        linalg::conjugate_gradient(mp.problem.a, mp.problem.b, x, options);
    benchmark::DoNotOptimize(result.residual_norm);
  }
}
BENCHMARK(BM_ConjugateGradientUnfused)->Arg(16)->Arg(32)->Arg(64);

void BM_SerializeBoundaryLine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Vector line(n, 1.25);
  for (auto _ : state) {
    serial::Writer w;
    w.f64_vector(line);
    auto bytes = w.take();
    serial::Reader r(bytes);
    auto decoded = r.f64_vector();
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(double)));
}
BENCHMARK(BM_SerializeBoundaryLine)->Arg(96)->Arg(2000)->Arg(5000);

void BM_CheckpointRoundTrip(benchmark::State& state) {
  poisson::PoissonConfig pc;
  pc.n = static_cast<std::uint32_t>(state.range(0));
  core::AppDescriptor app;
  app.task_count = 4;
  app.config = poisson::encode_config(pc);
  poisson::PoissonTask task;
  task.init(app, 1);
  task.iterate();
  for (auto _ : state) {
    auto snapshot = task.checkpoint();
    poisson::PoissonTask replica;
    replica.init(app, 1);
    replica.restore(snapshot);
    benchmark::DoNotOptimize(replica.x_ext().data());
  }
}
BENCHMARK(BM_CheckpointRoundTrip)->Arg(32)->Arg(96);

void BM_EventQueue(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < batch; ++i) {
      q.schedule(rng.next_double(), [] {});
    }
    double now = 0;
    while (!q.empty()) q.pop(&now)();
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(10000);

// Cancel-heavy load: the periodic-timer reschedule pattern that triggers the
// eager tombstone purge. Every other event is cancelled before draining, so
// one round exercises push, cancel (with purges) and pop together.
void BM_EventQueueCancel(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      ids.push_back(q.schedule(rng.next_double(), [] {}));
    }
    for (std::size_t i = 0; i < batch; i += 2) q.cancel(ids[i]);
    double now = 0;
    while (!q.empty()) q.pop(&now)();
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueCancel)->Arg(1000)->Arg(10000);

// Sharded-scheduler micro-costs (DESIGN.md §12). Same event batch pushed
// through one queue vs hash-partitioned across N shard queues: the work is
// identical, but each heap is ~1/N the size, so sift depth shrinks — the
// serial-side win bench_scale measures at the 10k-daemon tier.
void BM_EventQueueShardedPushPop(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kEvents = 10000;
  Rng rng(5);
  std::vector<std::pair<double, std::uint64_t>> events;  // (time, node id)
  events.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    events.emplace_back(rng.next_double(), rng.next_u64());
  }
  for (auto _ : state) {
    std::vector<sim::EventQueue> queues(shards);
    for (const auto& [t, id] : events) {
      queues[sim::SimWorld::shard_of(id, shards)].schedule(t, [] {});
    }
    double now = 0;
    for (auto& q : queues) {
      while (!q.empty()) q.pop(&now)();
    }
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEvents));
}
BENCHMARK(BM_EventQueueShardedPushPop)->Arg(1)->Arg(4)->Arg(8);

// The between-rounds mailbox merge: concatenate per-shard outboxes (each
// already in send order), stable-sort pointers by arrival, and re-schedule
// into destination queues — the serial coordination cost every round pays.
void BM_ShardOutboxMerge(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kFrames = 10000;
  struct Frame {
    double arrival;
    std::uint32_t dest_shard;
  };
  Rng rng(6);
  std::vector<std::vector<Frame>> outboxes(shards);
  for (std::size_t i = 0; i < kFrames; ++i) {
    outboxes[i % shards].push_back(
        Frame{rng.next_double(), static_cast<std::uint32_t>(rng.index(shards))});
  }
  for (auto _ : state) {
    std::vector<const Frame*> merged;
    merged.reserve(kFrames);
    for (const auto& outbox : outboxes) {
      for (const Frame& f : outbox) merged.push_back(&f);
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Frame* a, const Frame* b) {
                       return a->arrival < b->arrival;
                     });
    std::vector<sim::EventQueue> queues(shards);
    for (const Frame* f : merged) {
      queues[f->dest_shard].schedule(f->arrival, [] {});
    }
    benchmark::DoNotOptimize(queues.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kFrames));
}
BENCHMARK(BM_ShardOutboxMerge)->Arg(2)->Arg(4)->Arg(8);

// The merge the round engine actually runs now (DESIGN.md §12): each outbox
// is sorted in place by (arrival, seq) inside the round, and the barrier
// walks the sorted runs with a cursor heap keyed (arrival, shard) — emitting
// the exact order of the concat + stable_sort above while reusing every
// buffer across rounds. This version also drains the destination queues each
// iteration (to keep them bounded), so it carries pop costs the baseline
// skips; the pairing is conservative. meta.ablation_pairs.outbox_merge in
// BENCH_micro.json labels the pair.
void BM_OutboxKWayMerge(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kFrames = 10000;
  struct Frame {
    double arrival;
    std::uint32_t dest_shard;
    std::uint64_t seq;
  };
  Rng rng(6);  // seed 6: identical frame set to BM_ShardOutboxMerge
  std::vector<std::vector<Frame>> outboxes(shards);
  for (std::size_t i = 0; i < kFrames; ++i) {
    auto& box = outboxes[i % shards];
    box.push_back(Frame{rng.next_double(),
                        static_cast<std::uint32_t>(rng.index(shards)),
                        box.size()});
  }
  struct Cursor {
    double arrival;
    std::uint32_t shard;
    std::size_t index;
  };
  const auto later = [](const Cursor& a, const Cursor& b) {
    if (a.arrival != b.arrival) return a.arrival > b.arrival;
    return a.shard > b.shard;
  };
  std::vector<std::vector<Frame>> scratch(shards);
  std::vector<Cursor> heap;
  heap.reserve(shards);
  std::vector<sim::EventQueue> queues(shards);
  for (auto _ : state) {
    for (std::size_t s = 0; s < shards; ++s) {
      scratch[s] = outboxes[s];  // capacity reused after the first iteration
      std::sort(scratch[s].begin(), scratch[s].end(),
                [](const Frame& a, const Frame& b) {
                  if (a.arrival != b.arrival) return a.arrival < b.arrival;
                  return a.seq < b.seq;
                });
    }
    heap.clear();
    for (std::size_t s = 0; s < shards; ++s) {
      if (!scratch[s].empty()) {
        heap.push_back(Cursor{scratch[s].front().arrival,
                              static_cast<std::uint32_t>(s), 0});
      }
    }
    std::make_heap(heap.begin(), heap.end(), later);
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), later);
      const Cursor cur = heap.back();
      heap.pop_back();
      const Frame& frame = scratch[cur.shard][cur.index];
      queues[frame.dest_shard].schedule(frame.arrival, [] {});
      if (cur.index + 1 < scratch[cur.shard].size()) {
        heap.push_back(Cursor{scratch[cur.shard][cur.index + 1].arrival,
                              cur.shard, cur.index + 1});
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
    double now = 0;
    for (auto& q : queues) {
      while (!q.empty()) q.pop(&now)();
    }
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kFrames));
}
BENCHMARK(BM_OutboxKWayMerge)->Arg(2)->Arg(4)->Arg(8);

class NullActor : public net::Actor {
 public:
  void on_start(net::Env&) override {}
  void on_message(const net::Message&, net::Env&) override {}
};

void add_lookahead_fleet(sim::SimWorld& world, std::size_t nodes,
                         net::NodeId* first) {
  Rng rng(7);
  for (std::size_t i = 0; i < nodes; ++i) {
    sim::MachineSpec spec;
    spec.latency_s = 100e-6 + rng.next_double() * 400e-6;
    spec.message_overhead_s = 1e-3 + rng.next_double() * 7e-3;
    const net::Stub stub =
        world.add_node(std::make_unique<NullActor>(), spec, net::EntityKind::Daemon);
    if (i == 0) *first = stub.node;
  }
}

// The horizon question every round asks, on the steady-state path: nothing
// changed since the last round, so the cached wire-cost minimum answers in
// O(1) regardless of fleet size.
void BM_LookaheadCached(benchmark::State& state) {
  sim::SimConfig config;
  config.shards = 4;
  sim::SimWorld world(config);
  net::NodeId first = 0;
  add_lookahead_fleet(world, static_cast<std::size_t>(state.range(0)), &first);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.lookahead());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LookaheadCached)->Arg(1024)->Arg(16384)->Arg(100000);

// Worst case for the cache: a wire-cost invalidation (throttle with a wire
// factor) every iteration, forcing the O(nodes) minimum rescan each time —
// what every round would pay without the cache. Pairs with BM_LookaheadCached.
void BM_LookaheadRescan(benchmark::State& state) {
  sim::SimConfig config;
  config.shards = 4;
  sim::SimWorld world(config);
  net::NodeId first = 0;
  add_lookahead_fleet(world, static_cast<std::size_t>(state.range(0)), &first);
  for (auto _ : state) {
    world.throttle(first, 1.0, 1.0 + 1e-12);
    benchmark::DoNotOptimize(world.lookahead());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LookaheadRescan)->Arg(1024)->Arg(16384)->Arg(100000);

void BM_MessageEncodeDecode(benchmark::State& state) {
  core::AppRegister reg;
  reg.app_id = 1;
  reg.version = 5;
  reg.spawner = net::Stub{1, 1, net::EntityKind::Spawner};
  for (std::uint32_t t = 0; t < 80; ++t) {
    reg.tasks.push_back(
        core::TaskEntry{t, net::Stub{t + 2, 1, net::EntityKind::Daemon}});
  }
  core::msg::RegisterUpdate update{reg};
  for (auto _ : state) {
    const auto m = net::make_message(update);
    const auto decoded = net::payload_of<core::msg::RegisterUpdate>(m);
    benchmark::DoNotOptimize(decoded.reg.version);
  }
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_BlockingQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    BlockingQueue<int> q;
    for (int i = 0; i < 1000; ++i) q.push(i);
    int sum = 0;
    for (int i = 0; i < 1000; ++i) sum += *q.try_pop();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_BlockingQueueThroughput);

// Super-peer failure detection (DESIGN.md §13 satellite): the old per-sweep
// linear scan over the whole register vs the indexed deadline min-heap
// (core/deadline_heap.hpp). Timed region = the sweep alone; heartbeat
// bookkeeping runs untimed between sweeps for both variants (that cost lives
// on the heartbeat-handler path, where both structures pay an O(log n)-class
// map update). Workload per sweep: fleet of `n`, 10 crashed daemons to
// collect — the realistic regime where almost everyone heartbeated in time.
constexpr std::size_t kSweepCrashed = 10;

void BM_HeartbeatScanLinear(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::map<std::uint64_t, double> last;
  for (std::size_t i = 0; i < n; ++i) last[i] = 0.0;
  double now = 0.0;
  const double timeout = 2.5;
  std::size_t swept = 0;
  for (auto _ : state) {
    state.PauseTiming();
    now += 0.5;
    // Daemons [0, kSweepCrashed) are dead and stop heartbeating; everyone
    // else refreshed since the last sweep.
    for (auto& [id, t] : last) {
      if (id < kSweepCrashed && now > timeout) continue;
      t = now;
    }
    state.ResumeTiming();
    // The pre-§13 sweep: walk the whole register.
    for (auto& [id, t] : last) {
      if (t < now - timeout) {
        ++swept;
        t = now;  // re-registers, keeping the fleet at n
      }
    }
  }
  benchmark::DoNotOptimize(swept);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HeartbeatScanLinear)->Arg(1000)->Arg(10000)->Arg(100000)->Iterations(200);

void BM_HeartbeatScanHeap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::DeadlineHeap<std::uint64_t> heap;
  for (std::size_t i = 0; i < n; ++i) heap.bump(i, 0.0);
  double now = 0.0;
  const double timeout = 2.5;
  std::size_t swept = 0;
  for (auto _ : state) {
    state.PauseTiming();
    now += 0.5;
    for (std::size_t i = 0; i < n; ++i) {
      if (i < kSweepCrashed && now > timeout) continue;  // dead, no heartbeat
      heap.bump(i, now);
    }
    state.ResumeTiming();
    heap.expire(now - timeout, [&](std::uint64_t id) {
      ++swept;
      heap.bump(id, now);  // re-registers, keeping the fleet at n
    });
  }
  benchmark::DoNotOptimize(swept);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HeartbeatScanHeap)->Arg(1000)->Arg(10000)->Arg(100000)->Iterations(200);

void BM_RngU64(benchmark::State& state) {
  Rng rng(1);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc ^= rng.next_u64();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngU64);

}  // namespace

BENCHMARK_MAIN();
