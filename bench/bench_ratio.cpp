// Eq. (4) of the paper: ratio = computing time per iteration /
// communication time per iteration. The paper uses this ratio to explain why
// small problems iterate "uselessly" more often: when the ratio is small a
// processor frequently starts an iteration before any dependency update has
// arrived.
//
// This bench computes both sides of the ratio from the actual models the
// simulator uses — per-iteration flops measured by running the real task, and
// per-message delay from the network model — and reports the measured
// fraction of informative iterations from a full run.
#include <cstdio>

#include "bench_common.hpp"
#include "core/daemon.hpp"
#include "poisson/block_task.hpp"
#include "support/flags.hpp"

using namespace jacepp;
using namespace jacepp::bench;

namespace {

/// Per-iteration compute cost (flops) of an interior task, measured by
/// driving two coupled tasks a few synchronous rounds and averaging the
/// steady-state solve cost.
double measured_flops_per_iteration(std::size_t n, std::uint32_t tasks,
                                    double work_scale) {
  poisson::PoissonConfig pc;
  pc.n = static_cast<std::uint32_t>(n);
  pc.inner_tolerance = 1e-6;
  pc.work_scale = work_scale;
  core::AppDescriptor app;
  app.task_count = tasks;
  app.config = poisson::encode_config(pc);

  const core::TaskId mid = tasks / 2;
  std::vector<poisson::PoissonTask> ring(3);
  const core::TaskId ids[3] = {mid - 1, mid, mid + 1};
  for (int i = 0; i < 3; ++i) ring[i].init(app, ids[i]);

  double flops = 0.0;
  int counted = 0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 3; ++i) {
      const double f = ring[i].iterate();
      if (round >= 2 && i == 1) {
        flops += f;
        ++counted;
      }
    }
    for (int i = 0; i < 3; ++i) {
      for (auto& out : ring[i].outgoing()) {
        for (int j = 0; j < 3; ++j) {
          if (ids[j] == out.to_task) ring[j].on_data(ids[i], round + 1, out.payload);
        }
      }
    }
  }
  return counted > 0 ? flops / counted : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("bench_ratio",
                "Eq. (4): compute/communication ratio per iteration vs n");
  auto tasks = flags.add_int("tasks", 80, "computing peers");
  auto seed = flags.add_uint("seed", 42, "seed");
  flags.parse(argc, argv);

  poisson::force_registration();

  print_header("Eq. (4) — compute vs communication time per iteration",
               "  n(sim)  n(paper)  t_comp_s   t_comm_s    ratio    "
               "informative%  iters(mean)");

  const sim::MachineSpec median;  // 200 Mflop/s, 100 Mb/s, defaults
  for (const std::size_t n : {96ul, 144ul, 192ul, 240ul}) {
    ExperimentParams p;
    p.n = n;
    p.tasks = static_cast<std::uint32_t>(*tasks);
    p.seed = *seed;

    const double flops = measured_flops_per_iteration(n, p.tasks, p.work_scale);
    const double t_comp = flops / median.flops_per_sec;
    // One boundary line each way: n doubles + envelope.
    const double message_bytes = static_cast<double>(n) * 8.0 + 52.0;
    const double t_comm = 2.0 * (median.latency_s + median.message_overhead_s) +
                          message_bytes * 8.0 / median.bandwidth_bps;
    const double ratio = t_comp / t_comm;

    // Fraction of informative iterations from a real run.
    const auto outcome = run_experiment(p);
    double informative_pct = -1.0;
    double iters = -1.0;
    if (outcome.completed) {
      iters = outcome.report.spawner.mean_iteration();
      const double informative =
          outcome.report.spawner.mean_informative_iteration();
      if (iters > 0.0) informative_pct = 100.0 * informative / iters;
    }
    std::printf("  %6zu  %8zu  %8.4f   %8.4f  %7.1f      %8.1f%%  %11.1f\n", n,
                paper_n(n), t_comp, t_comm, ratio, informative_pct, iters);
    std::fflush(stdout);
  }

  std::printf(
      "\npaper check: the ratio grows with n; small-n runs sit in the "
      "small-ratio regime where useless iterations dominate (§7).\n");
  return 0;
}
