// Shared experiment plumbing for the paper-reproduction benches.
//
// Scaling note (see DESIGN.md §2): the paper runs n = 2000…5000 on ~100 real
// machines; we run the same *code paths* on a simulated fleet with the grid
// scaled down by 2000/96 ≈ 20.8x and the per-iteration flop count scaled back
// up by work_scale = 20.8² ≈ 434 so the compute/communication ratio (the
// paper's Eq. 4) stays on the paper's trajectory. Simulated seconds are
// therefore comparable in structure (who wins, by what factor), not in
// absolute value.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "poisson/block_task.hpp"
#include "poisson/poisson.hpp"
#include "support/stats.hpp"

namespace jacepp::bench {

/// sim-n → paper-n mapping (factor ≈ 20.83).
inline double paper_scale_factor() { return 2000.0 / 96.0; }

inline std::size_t paper_n(std::size_t sim_n) {
  return static_cast<std::size_t>(static_cast<double>(sim_n) *
                                      paper_scale_factor() +
                                  0.5);
}

/// Timing constants for the paper-regime experiments (iterations ~0.5 s).
inline core::TimingConfig paper_timing() {
  core::TimingConfig t;
  t.heartbeat_period = 1.0;
  t.daemon_timeout = 4.0;
  t.super_peer_timeout = 3.0;
  t.sweep_period = 1.0;
  t.bootstrap_retry = 1.0;
  t.reserve_retry = 1.0;
  t.reserved_timeout = 10.0;
  t.backup_query_timeout = 1.5;
  t.backup_fetch_timeout = 3.0;
  t.final_state_timeout = 5.0;
  return t;
}

struct ExperimentParams {
  std::size_t n = 144;              ///< sim grid side
  std::uint32_t tasks = 80;         ///< paper §7: 80 computing peers
  std::size_t daemons = 100;        ///< paper §7: ~100 daemons
  std::size_t super_peers = 3;      ///< paper §7: 3 super-peers
  /// Overlap in whole grid lines. The paper's "optimal overlapping value" is
  /// sub-line (< n components); at our scaled grid some blocks own a single
  /// line, so the headline sweeps use 0 and bench_overlap studies the effect.
  std::uint32_t overlap_lines = 0;
  std::uint32_t checkpoint_every = 5;   ///< paper §7
  std::uint32_t backup_peers = 20;      ///< paper §7
  std::size_t disconnections = 0;
  double reconnect_delay = 20.0;    ///< paper §7: "about 20 seconds later"
  double work_scale = paper_scale_factor() * paper_scale_factor();
  /// Paper-style loose update-distance detection: the paper's runs stop at
  /// ~40-100 outer iterations with 80 strip blocks, which is only reachable
  /// with an update-based criterion far looser than discretization accuracy
  /// (the paper reports times, never residuals). The harness reports the true
  /// residual of every run alongside.
  double convergence_threshold = 1e-3;
  std::uint32_t stable_required = 5;
  double inner_tolerance = 1e-6;
  std::uint64_t seed = 42;
  /// Window start/length (sim seconds) over which disconnect times are drawn;
  /// horizon <= 0 means "no disconnections scheduled".
  double disconnect_start = 0.0;
  double disconnect_horizon = 0.0;
  double max_sim_time = 4000.0;
};

struct ExperimentOutcome {
  core::SimExperimentReport report;
  double residual = -1.0;   ///< relative residual of the assembled solution
  bool completed = false;
  double execution_time = 0.0;
};

inline core::SimDeploymentConfig make_config(const ExperimentParams& p) {
  poisson::force_registration();

  poisson::PoissonConfig pc;
  pc.n = static_cast<std::uint32_t>(p.n);
  pc.overlap_lines = p.overlap_lines;
  pc.inner_tolerance = p.inner_tolerance;
  pc.work_scale = p.work_scale;

  core::SimDeploymentConfig config;
  config.super_peer_count = p.super_peers;
  config.daemon_count = p.daemons;
  config.timing = paper_timing();
  config.sim.seed = p.seed;
  config.max_sim_time = p.max_sim_time;
  config.reconnect_delay = p.reconnect_delay;

  config.app.app_id = 1;
  config.app.program = poisson::PoissonTask::kProgramName;
  config.app.config = poisson::encode_config(pc);
  config.app.task_count = p.tasks;
  config.app.checkpoint_every = p.checkpoint_every;
  config.app.backup_peer_count = p.backup_peers;
  config.app.convergence_threshold = p.convergence_threshold;
  config.app.stable_iterations_required = p.stable_required;

  if (p.disconnections > 0 && p.disconnect_horizon > 0.0) {
    config.disconnect_times = core::uniform_disconnect_schedule(
        p.disconnections, p.disconnect_start, p.disconnect_horizon,
        p.seed ^ 0xd15c0ULL);
  }
  return config;
}

inline ExperimentOutcome run_experiment(const ExperimentParams& p) {
  core::SimDeployment deployment(make_config(p));
  ExperimentOutcome outcome;
  outcome.report = deployment.run();
  outcome.completed = outcome.report.spawner.completed;
  outcome.execution_time = outcome.report.spawner.execution_time();

  poisson::PoissonConfig pc;
  pc.n = static_cast<std::uint32_t>(p.n);
  const auto x = poisson::assemble_solution(
      p.n, p.tasks, outcome.report.spawner.final_payloads);
  outcome.residual = poisson::poisson_relative_residual(pc, x);
  return outcome;
}

/// Run the zero-disconnection case once to calibrate the failure window for
/// a given n (the paper injects failures "during the execution").
inline double calibrate_baseline_time(ExperimentParams p) {
  p.disconnections = 0;
  const auto outcome = run_experiment(p);
  return outcome.completed ? outcome.execution_time : p.max_sim_time;
}

inline void print_header(const std::string& title,
                         const std::string& columns) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
}

}  // namespace jacepp::bench
