// Checkpoint-path microbenchmarks (google-benchmark): full-baseline vs delta
// frame encoding at controlled dirty fractions, decode+apply on the holder
// side, and the CRC-32 primitive itself. Byte counters accompany the timings
// so run_bench.sh can report the delta/full size ratio directly.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/backup.hpp"
#include "core/checkpoint.hpp"
#include "serial/checksum.hpp"
#include "serial/serial.hpp"
#include "support/rng.hpp"

namespace {

using namespace jacepp;
using core::checkpoint::CheckpointPolicy;
using core::checkpoint::DeltaEncoder;
using core::checkpoint::DirtyRanges;
using serial::Bytes;

Bytes random_state(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes state(size);
  for (auto& b : state) b = static_cast<std::uint8_t>(rng.next_u64());
  return state;
}

/// Rewrite `percent`% of the chunks (spread evenly) and return honest hints.
DirtyRanges dirty_fraction(Bytes& state, std::size_t chunk_size, int percent,
                           std::uint64_t salt) {
  DirtyRanges d;
  const std::size_t chunks = (state.size() + chunk_size - 1) / chunk_size;
  const std::size_t stride = percent > 0 ? std::max<std::size_t>(1, 100 / percent) : chunks;
  for (std::size_t c = 0; c < chunks; c += stride) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(state.size(), lo + chunk_size);
    for (std::size_t i = lo; i < hi; ++i) {
      state[i] = static_cast<std::uint8_t>(state[i] + 1 + salt);
    }
    d.mark(lo, hi);
  }
  return d;
}

void BM_Crc32(benchmark::State& state) {
  const Bytes data = random_state(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial::crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Crc32)->Arg(4 << 10)->Arg(256 << 10);

void BM_EncodeFullFrame(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const Bytes st = random_state(size, 2);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes frame = core::checkpoint::encode_full_frame(1, 4096, st);
    bytes = frame.size();
    benchmark::DoNotOptimize(frame.data());
  }
  state.counters["frame_bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_EncodeFullFrame)->Arg(64 << 10)->Arg(1 << 20);

/// Steady-state delta emission: each iteration re-dirties `range(1)`% of the
/// chunks and emits through a warm DeltaEncoder (memcmp sweep + encode).
void BM_EncodeDeltaFrame(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const int percent = static_cast<int>(state.range(1));
  CheckpointPolicy policy;
  policy.chunk_size = 4096;
  policy.rebase_every = 0xFFFFFFFF;     // keep the chain on deltas
  policy.chain_byte_budget = ~0ull;
  DeltaEncoder encoder(policy, 1);
  Bytes st = random_state(size, 3);
  (void)encoder.emit(0, st, std::nullopt);  // baseline

  std::size_t bytes = 0;
  std::uint64_t salt = 0;
  for (auto _ : state) {
    const auto hints = dirty_fraction(st, policy.chunk_size, percent, ++salt);
    const auto emitted = encoder.emit(0, st, hints);
    bytes = emitted.frame.size();
    benchmark::DoNotOptimize(emitted.frame.data());
  }
  state.counters["frame_bytes"] = static_cast<double>(bytes);
  state.counters["full_bytes"] =
      static_cast<double>(core::checkpoint::encode_full_frame(1, 4096, st).size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_EncodeDeltaFrame)
    ->Args({64 << 10, 5})
    ->Args({64 << 10, 20})
    ->Args({1 << 20, 5})
    ->Args({1 << 20, 20})
    ->Args({1 << 20, 100});

/// Holder-side chain replay: ingest a baseline + N deltas, then materialize.
void BM_MaterializeChain(benchmark::State& state) {
  const std::size_t size = 1 << 20;
  const auto chain_len = static_cast<std::size_t>(state.range(0));
  CheckpointPolicy policy;
  policy.chunk_size = 4096;
  policy.rebase_every = 0xFFFFFFFF;
  policy.chain_byte_budget = ~0ull;
  DeltaEncoder encoder(policy, 1);
  Bytes st = random_state(size, 4);

  core::BackupStore store;
  (void)store.store_frame(1, 0, 0, encoder.emit(0, st, std::nullopt).frame);
  for (std::size_t i = 0; i < chain_len; ++i) {
    const auto hints = dirty_fraction(st, policy.chunk_size, 10, i);
    (void)store.store_frame(1, 0, i + 1, encoder.emit(0, st, hints).frame);
  }
  for (auto _ : state) {
    auto rebuilt = store.materialize(1, 0);
    benchmark::DoNotOptimize(rebuilt->data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_MaterializeChain)->Arg(1)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
