// Ablation A1 — synchronous vs asynchronous iterations.
//
// The paper's argument for the asynchronous model (§1, §8): synchronous
// iterations would stall EVERY node whenever a single peer disconnects (a
// barrier cannot complete until the failed rank is replaced and caught up),
// whereas the asynchronous model lets alive peers keep computing.
//
// Part 1 (engine): iteration counts of the multisplitting engine in
// synchronous vs bounded-staleness asynchronous mode — asynchrony costs extra
// iterations (the price of stale reads) but each round needs no barrier.
//
// Part 2 (model): execution time under failures. Async times are measured in
// the full P2P simulator; synchronous times are derived from the same runs
// with the barrier-stall model: every failure freezes ALL peers for
// (detection + recovery) and the per-round time is the MAX over peers
// (barrier) instead of each peer's own rate.
#include <cstdio>

#include "asynciter/multisplit.hpp"
#include "bench_common.hpp"
#include "poisson/poisson.hpp"
#include "support/flags.hpp"

using namespace jacepp;
using namespace jacepp::bench;

int main(int argc, char** argv) {
  FlagSet flags("bench_sync_vs_async",
                "Sync vs async iterations: engine iteration counts and "
                "failure-stall model");
  auto n_engine = flags.add_int("n_engine", 48, "grid side for engine runs");
  auto blocks_engine = flags.add_int("blocks", 8, "engine block count");
  auto seed = flags.add_uint("seed", 42, "seed");
  flags.parse(argc, argv);

  // --- Part 1: engine-level iteration counts ---
  print_header("A1a — multisplitting engine: outer iterations to 1e-8",
               "  staleness  max_delay   iters(sync)  iters(async)  penalty");
  const auto problem = poisson::make_default_problem(*n_engine);
  const auto blocks = linalg::partition_rows(
      static_cast<std::size_t>(*n_engine * *n_engine),
      static_cast<std::size_t>(*blocks_engine),
      static_cast<std::size_t>(*n_engine), 0);

  asynciter::MultisplitOptions opt;
  opt.tolerance = 1e-8;
  opt.inner.tolerance = 1e-10;
  opt.inner.max_iterations = 2000;
  opt.max_outer_iterations = 100000;
  opt.seed = *seed;
  opt.mode = asynciter::IterationMode::Synchronous;
  const auto sync = run_multisplitting(problem.a, problem.b, blocks, opt);

  for (const double staleness : {0.2, 0.5, 0.8}) {
    for (const std::size_t max_delay : {1ul, 3ul, 6ul}) {
      opt.mode = asynciter::IterationMode::AsyncBoundedDelay;
      opt.staleness_probability = staleness;
      opt.max_staleness = max_delay;
      const auto async = run_multisplitting(problem.a, problem.b, blocks, opt);
      std::printf("  %9.1f  %9zu   %11zu  %12zu  %6.2fx\n", staleness, max_delay,
                  sync.outer_iterations, async.outer_iterations,
                  static_cast<double>(async.outer_iterations) /
                      static_cast<double>(sync.outer_iterations));
      std::fflush(stdout);
    }
  }

  // --- Part 2: failure-stall model on the P2P simulator ---
  print_header(
      "A1b — execution time under failures: measured async vs modelled sync",
      "  disc   async_s   sync_modelled_s   sync/async");
  for (const std::size_t d : {0ul, 10ul, 25ul, 50ul}) {
    ExperimentParams p;
    p.n = 96;
    p.seed = *seed;
    p.disconnections = d;
    p.disconnect_start = 2.0;
    p.disconnect_horizon = 40.0;
    const auto outcome = run_experiment(p);
    if (!outcome.completed) continue;

    // Sync model: the barrier runs at the slowest peer's pace (the fleet's
    // min/mean speed ratio ~ the heterogeneity spread) and every failure
    // stalls everyone for detection + replacement + re-synchronisation.
    const double hetero_penalty = 300e6 / 200e6;  // max/mean CPU speed ratio
    const double per_failure_stall =
        paper_timing().daemon_timeout + paper_timing().backup_query_timeout +
        2.0;  // detection + backup recovery + barrier refill
    const double sync_time = outcome.execution_time * hetero_penalty +
                             static_cast<double>(d) * per_failure_stall;
    std::printf("  %4zu  %8.1f   %15.1f   %9.2fx\n", d, outcome.execution_time,
                sync_time, sync_time / outcome.execution_time);
    std::fflush(stdout);
  }

  std::printf(
      "\npaper check: async tolerates failures with bounded slowdown; a "
      "barrier-synchronous run pays a full global stall per failure and the "
      "slowest peer's pace always (§1: \"all the nodes ... would stop "
      "computing when a single disconnection occurs\").\n");
  return 0;
}
