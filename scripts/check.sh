#!/usr/bin/env bash
# One-command gate: tier-1 build + ctest, then the same suite under
# ThreadSanitizer and AddressSanitizer (separate build trees, so the plain
# build stays incremental).
#
# Usage:
#   scripts/check.sh            # plain + tsan + asan
#   scripts/check.sh plain      # just the tier-1 build + ctest
#   scripts/check.sh tsan asan  # just the sanitizer configs
#   JOBS=8 scripts/check.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-4}"
CONFIGS=("$@")
if [[ ${#CONFIGS[@]} -eq 0 ]]; then
  CONFIGS=(plain tsan asan)
fi

run_config() {
  local name="$1" build_dir sanitize
  case "${name}" in
    plain) build_dir="${REPO_ROOT}/build"      sanitize="" ;;
    tsan)  build_dir="${REPO_ROOT}/build-tsan" sanitize="thread" ;;
    asan)  build_dir="${REPO_ROOT}/build-asan" sanitize="address" ;;
    *) echo "unknown config '${name}' (want plain|tsan|asan)" >&2; return 1 ;;
  esac
  echo "== ${name}: configure + build (${build_dir}) =="
  cmake -B "${build_dir}" -S "${REPO_ROOT}" -DJACEPP_SANITIZE="${sanitize}"
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "== ${name}: ctest =="
  ctest --test-dir "${build_dir}" --output-on-failure
}

for config in "${CONFIGS[@]}"; do
  run_config "${config}"
done
echo "== all configs passed: ${CONFIGS[*]} =="
