#!/usr/bin/env bash
# Perf-regression guard: compare freshly written BENCH_*.json files against
# the committed baseline (git HEAD) and flag every lower-is-better metric that
# got more than BENCH_GUARD_TOL (default 30%) worse.
#
# Default mode is warn-only (always exits 0) because bench numbers move with
# the machine; the point is to make a perf cliff visible in the run log.
# BENCH_GUARD_STRICT=1 makes violations FAIL (non-zero exit) — used by the CI
# release job.
#
# Two kinds of checks:
#  1. Baseline timings — fresh lower-is-better numbers vs the committed
#     BENCH_*.json at git HEAD. Only meaningful when the fresh run used the
#     same machine class and bench scale as the committed one, so strict CI
#     runs (different runner, --smoke scale) skip them via
#     BENCH_GUARD_SKIP_BASELINE=1.
#  2. SIMD speedup floors — the off-vs-on ratios inside BENCH_hotpath.json
#     are measured within one run on one machine, so they are portable across
#     machines. On an AVX2 machine the BLAS-1 reductions must clear 1.5x, the
#     SELL SpMV 1.2x, and the gathered CSR rows must stay above 0.6x (i.e. no
#     worse than a modest regression vs scalar — they hover near parity on
#     5-nnz stencil rows and swing +/-30% with scheduler noise; the floor is
#     a cliff detector for bugs like a serializing gather dependency, not a
#     perf target). Floors only apply when the runtime dispatcher actually
#     selected avx2.
#  3. Sharded-scheduler floor — inside BENCH_scale.json, best sharded
#     events/sec at the 1k-daemon tier vs single-queue, measured within one
#     run. The floor is 1.0x with the guard tolerance applied (passes while
#     ratio >= 1 - BENCH_GUARD_TOL): on a 1-core runner sharding is
#     parity-at-best (smaller heaps vs round overhead) and the measured ratio
#     hovers around 1.0 with scheduler noise, so this is a cliff detector for
#     bugs like an accidentally serializing round barrier, not a speedup
#     target. The real speedup lives at the 10k tier (see EXPERIMENTS.md).
#  4. Control-plane floors — also inside BENCH_scale.json and also within-run
#     counters, so machine-portable. Three hard gates from DESIGN.md §13:
#     (a) with N super-peers no single one may serve more than
#         share_bound (1/N + tolerance) of reservation traffic,
#     (b) diffusion-based detection must keep spawner-bound convergence
#         traffic at O(1) per application (spawner_conv_msgs <= bound),
#     (c) the decentralized plane must replay bit-identically across
#         scheduler shard counts (cp_determinism.ok).
#  5. Churn / voting floors (DESIGN.md §14) — also inside BENCH_scale.json.
#     All sim-time counters on a pinned seed, so deterministic and
#     machine-portable:
#     (a) reputation-aware placement must not increase the replacement count
#         vs random placement on the committed churn ablation, and must not
#         increase sim execution time beyond the recorded tolerance,
#     (b) redundant-execution voting (rep.redundancy=3) must flag exactly the
#         injected liars — every liar caught, zero false positives.
#  6. Round-engine floors (DESIGN.md §12) — also inside BENCH_scale.json,
#     all within-run sim counters, so strict on any machine:
#     (a) on the hub-pinned skew case the deterministic rebalancer must cut
#         max/mean shard occupancy by at least the recorded bound (1.3x)
#         while performing at least one migration, with every scenario
#         counter bit-equal to the rebalance-off run AND to a forced
#         2-thread rerun (skew_floor.counters_equal / .thread_invariant),
#     (b) on the heterogeneous-wire case adaptive per-shard horizons must
#         drain the same scenario in at least the recorded bound (1.2x)
#         fewer barrier rounds than the uniform global horizon, with
#         identical counters (adaptive_lookahead block).
#     The per-case rounds counts also feed the baseline comparison as cliff
#     detectors: a lookahead regression shows up as a rounds blow-up long
#     before it shows up in 1-core wall time.
#
# Usage: scripts/bench_guard.sh BENCH_micro.json [BENCH_hotpath.json ...]
#        BENCH_GUARD_STRICT=1 BENCH_GUARD_SKIP_BASELINE=1 scripts/bench_guard.sh BENCH_hotpath.json
set -uo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
TOL="${BENCH_GUARD_TOL:-0.30}"
STRICT="${BENCH_GUARD_STRICT:-0}"
SKIP_BASELINE="${BENCH_GUARD_SKIP_BASELINE:-0}"

# Emit "metric value" lines for the lower-is-better timings of a bench file.
metrics_for() {
  local file="$1"
  case "$(basename "${file}")" in
    BENCH_micro.json)
      jq -r '
        ((.serial.benchmarks // [])[] | "serial/\(.name) \(.real_time)"),
        ((.parallel.benchmarks // [])[] | "parallel/\(.name) \(.real_time)")
      ' "${file}" ;;
    BENCH_checkpoint.json)
      jq -r '(.benchmarks // [])[] | "\(.name) \(.real_time)"' "${file}" ;;
    BENCH_comm.json)
      jq -r '
        ((.slow_consumer.runs // {}) | to_entries[]
          | "slow/\(.key)/exec_s \(.value.execution_time_s)"),
        ((.flaky_consumer.runs // {}) | to_entries[]
          | "flaky/\(.key)/exec_s \(.value.execution_time_s)")
      ' "${file}" ;;
    BENCH_hotpath.json)
      jq -r '
        ((.fused.kernels // {}) | to_entries[]
          | "fused/\(.key)_ns \(.value.fused_ns)"),
        "fused/cg_ms \(.fused.cg.fused_ms)",
        ((.early_send.runs // {}) | to_entries[]
          | "early/\(.key)/exec_s \(.value.execution_time_s)"),
        "pool/encode_ns \(.pool.encode.pooled_ns)"
      ' "${file}" ;;
    BENCH_scale.json)
      jq -r '
        ((.cases // [])[] | "scale/d\(.daemons)/s\(.shards)/wall_s \(.wall_s)"),
        ((.cases // [])[] | "scale/d\(.daemons)/s\(.shards)/rounds \(.rounds)"),
        ((.skew_cases // [])[]
          | "skew/rebalance_\(.rebalance)/t\(.worker_threads)/rounds \(.rounds)")
      ' "${file}" ;;
    *) ;;
  esac
}

# SIMD speedup floors (see header). Emits one "FLOOR ..." line per violation.
simd_floor_checks() {
  local file="$1"
  jq -r '
    (.simd // empty) |
    select(.level_detected == "avx2") |
    [
      {metric: "simd/dot",                 value: (.kernels.dot.off_ns / .kernels.dot.on_ns),                                 floor: 1.5},
      {metric: "simd/axpy_norm2",          value: (.kernels.axpy_norm2.off_ns / .kernels.axpy_norm2.on_ns),                   floor: 1.5},
      {metric: "simd/sell_spmv",           value: .sell.speedup,                                                              floor: 1.2},
      {metric: "simd/spmv",                value: (.kernels.spmv.off_ns / .kernels.spmv.on_ns),                               floor: 0.6},
      {metric: "simd/spmv_residual_norm2", value: (.kernels.spmv_residual_norm2.off_ns / .kernels.spmv_residual_norm2.on_ns), floor: 0.6},
      {metric: "simd/spmv_dot",            value: (.kernels.spmv_dot.off_ns / .kernels.spmv_dot.on_ns),                       floor: 0.6}
    ][] |
    select(.value < .floor) |
    "bench-guard: FLOOR \(.metric): \(.value * 1000 | floor / 1000)x below floor \(.floor)x"
  ' "${file}" 2>/dev/null
}

# Control-plane floors (see header, check 4). All within-run counters, no
# tolerance knob: the bounds are already baked into the bench output.
cp_floor_checks() {
  local file="$1"
  jq -r '
    ((.cp_floor // empty)
      | select(.max_share > .share_bound)
      | "bench-guard: FLOOR cp/reservation_share@\(.daemons)d/\(.super_peers)sp: \(.max_share * 1000 | floor / 1000) above bound \(.share_bound)"),
    ((.cp_floor // empty)
      | select(.spawner_conv_msgs > .conv_msgs_bound)
      | "bench-guard: FLOOR cp/spawner_conv_msgs: \(.spawner_conv_msgs) above O(1) bound \(.conv_msgs_bound)"),
    ((.cp_determinism // empty)
      | select(.ok != true)
      | "bench-guard: FLOOR cp/shard_determinism: digest \(.shards1_digest) (shards=1) != \(.shards4_digest) (shards=4)")
  ' "${file}" 2>/dev/null
}

# Churn / voting floors (see header, check 5). Pinned-seed sim-time counters,
# so deterministic across machines; no tolerance knob beyond the recorded one.
churn_floor_checks() {
  local file="$1"
  jq -r '
    ((.churn_floor // empty)
      | select(.rep_replacements > .random_replacements)
      | "bench-guard: FLOOR churn/replacements: reputation placement \(.rep_replacements) above random \(.random_replacements)"),
    ((.churn_floor // empty)
      | select(.rep_exec_s > .random_exec_s * .exec_tolerance)
      | "bench-guard: FLOOR churn/exec_time: reputation \(.rep_exec_s)s above random \(.random_exec_s)s x \(.exec_tolerance)"),
    ((.voting_floor // empty)
      | select(.ok != true)
      | "bench-guard: FLOOR voting/detection: redundancy-\(.redundancy) voting did not flag exactly the injected liars")
  ' "${file}" 2>/dev/null
}

# Round-engine floors (see header, check 6). Pure sim counters measured
# within one run — no tolerance knob, the bounds come from the bench output.
round_engine_floor_checks() {
  local file="$1"
  jq -r '
    ((.skew_floor // empty)
      | select(.improvement < .bound)
      | "bench-guard: FLOOR skew/occupancy@\(.daemons)d: \(.improvement * 1000 | floor / 1000)x below bound \(.bound)x (\(.occupancy_off) -> \(.occupancy_on))"),
    ((.skew_floor // empty)
      | select(.migrations == 0)
      | "bench-guard: FLOOR skew/migrations@\(.daemons)d: rebalancer performed no migrations on the skewed case"),
    ((.skew_floor // empty)
      | select(.counters_equal != true)
      | "bench-guard: FLOOR skew/counters@\(.daemons)d: rebalanced run diverged from the rebalance-off scenario counters"),
    ((.skew_floor // empty)
      | select(.thread_invariant != true)
      | "bench-guard: FLOOR skew/thread_invariance@\(.daemons)d: 2-thread rerun diverged from the 1-thread rebalanced run"),
    ((.adaptive_lookahead // empty)
      | select(.ratio < .bound)
      | "bench-guard: FLOOR adaptive/rounds@\(.daemons)d: \(.ratio * 1000 | floor / 1000)x below bound \(.bound)x (\(.uniform_rounds) -> \(.adaptive_rounds) rounds)"),
    ((.adaptive_lookahead // empty)
      | select(.counters_equal != true)
      | "bench-guard: FLOOR adaptive/counters@\(.daemons)d: adaptive horizons changed the scenario counters")
  ' "${file}" 2>/dev/null
}

# Sharded-scheduler floor (see header, check 3). Within-run ratio, so it is
# machine-portable; tolerance-adjusted because the 1k tier sits at parity.
scale_floor_checks() {
  local file="$1"
  jq -r --argjson tol "${TOL}" '
    (.floor // empty) |
    select(.single_eps > 0) |
    select(.ratio < 1.0 - $tol) |
    "bench-guard: FLOOR scale/sharded_vs_single@\(.daemons): \(.ratio)x below floor 1.0x (tolerance \($tol * 100 | floor)%)"
  ' "${file}" 2>/dev/null
}

total_warnings=0
for file in "$@"; do
  name="$(basename "${file}")"
  if [[ ! -f "${file}" ]]; then
    echo "bench-guard: ${name}: missing, skipped"
    continue
  fi

  if [[ "${name}" == "BENCH_hotpath.json" ]]; then
    floor_violations="$(simd_floor_checks "${file}")"
    if [[ -n "${floor_violations}" ]]; then
      echo "${floor_violations}"
      total_warnings=$((total_warnings + $(echo "${floor_violations}" | wc -l)))
    else
      echo "bench-guard: ${name}: simd speedup floors hold"
    fi
  fi

  if [[ "${name}" == "BENCH_scale.json" ]]; then
    scale_violations="$(scale_floor_checks "${file}")"
    if [[ -n "${scale_violations}" ]]; then
      echo "${scale_violations}"
      total_warnings=$((total_warnings + $(echo "${scale_violations}" | wc -l)))
    else
      echo "bench-guard: ${name}: sharded throughput floor holds"
    fi
    cp_violations="$(cp_floor_checks "${file}")"
    if [[ -n "${cp_violations}" ]]; then
      echo "${cp_violations}"
      total_warnings=$((total_warnings + $(echo "${cp_violations}" | wc -l)))
    else
      echo "bench-guard: ${name}: control-plane floors hold"
    fi
    churn_violations="$(churn_floor_checks "${file}")"
    if [[ -n "${churn_violations}" ]]; then
      echo "${churn_violations}"
      total_warnings=$((total_warnings + $(echo "${churn_violations}" | wc -l)))
    else
      echo "bench-guard: ${name}: churn placement and voting floors hold"
    fi
    round_violations="$(round_engine_floor_checks "${file}")"
    if [[ -n "${round_violations}" ]]; then
      echo "${round_violations}"
      total_warnings=$((total_warnings + $(echo "${round_violations}" | wc -l)))
    else
      echo "bench-guard: ${name}: round-engine rebalance and adaptive-lookahead floors hold"
    fi
  fi

  if [[ "${SKIP_BASELINE}" == "1" ]]; then
    continue
  fi
  baseline="$(mktemp)"
  if ! git -C "${REPO_ROOT}" show "HEAD:${name}" > "${baseline}" 2>/dev/null; then
    echo "bench-guard: ${name}: no committed baseline, skipped"
    rm -f "${baseline}"
    continue
  fi

  fresh_metrics="$(metrics_for "${file}")"
  base_metrics="$(metrics_for "${baseline}")"
  rm -f "${baseline}"

  warnings="$(awk -v tol="${TOL}" -v file="${name}" '
    NR == FNR { base[$1] = $2; next }
    ($1 in base) && base[$1] > 0 && $2 > base[$1] * (1 + tol) {
      printf "bench-guard: WARNING %s %s: %.0f -> %.0f (+%.0f%%, tolerance %.0f%%)\n",
             file, $1, base[$1], $2, ($2 / base[$1] - 1) * 100, tol * 100
      n++
    }
    END { exit n > 0 ? 1 : 0 }
  ' <(echo "${base_metrics}") <(echo "${fresh_metrics}"))" && status=0 || status=1

  if [[ ${status} -ne 0 ]]; then
    echo "${warnings}"
    total_warnings=$((total_warnings + $(echo "${warnings}" | wc -l)))
  else
    echo "bench-guard: ${name}: within ${TOL} of committed baseline"
  fi
done

if [[ ${total_warnings} -gt 0 ]]; then
  if [[ "${STRICT}" == "1" ]]; then
    echo "bench-guard: FAIL — ${total_warnings} check(s) violated (BENCH_GUARD_STRICT=1)"
    exit 1
  fi
  echo "bench-guard: ${total_warnings} check(s) violated (warn-only, not failing)"
fi
exit 0
