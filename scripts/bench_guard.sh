#!/usr/bin/env bash
# Warn-only perf-regression guard: compare freshly written BENCH_*.json files
# against the committed baseline (git HEAD) and print a warning for every
# lower-is-better metric that got more than BENCH_GUARD_TOL (default 30%)
# worse. Purely advisory — always exits 0 — because bench numbers move with
# the machine; the point is to make a perf cliff visible in the run log, not
# to gate CI on timing noise.
#
# Usage: scripts/bench_guard.sh BENCH_micro.json [BENCH_hotpath.json ...]
set -uo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
TOL="${BENCH_GUARD_TOL:-0.30}"

# Emit "metric value" lines for the lower-is-better timings of a bench file.
metrics_for() {
  local file="$1"
  case "$(basename "${file}")" in
    BENCH_micro.json)
      jq -r '
        ((.serial.benchmarks // [])[] | "serial/\(.name) \(.real_time)"),
        ((.parallel.benchmarks // [])[] | "parallel/\(.name) \(.real_time)")
      ' "${file}" ;;
    BENCH_checkpoint.json)
      jq -r '(.benchmarks // [])[] | "\(.name) \(.real_time)"' "${file}" ;;
    BENCH_comm.json)
      jq -r '
        ((.slow_consumer.runs // {}) | to_entries[]
          | "slow/\(.key)/exec_s \(.value.execution_time_s)"),
        ((.flaky_consumer.runs // {}) | to_entries[]
          | "flaky/\(.key)/exec_s \(.value.execution_time_s)")
      ' "${file}" ;;
    BENCH_hotpath.json)
      jq -r '
        ((.fused.kernels // {}) | to_entries[]
          | "fused/\(.key)_ns \(.value.fused_ns)"),
        "fused/cg_ms \(.fused.cg.fused_ms)",
        ((.early_send.runs // {}) | to_entries[]
          | "early/\(.key)/exec_s \(.value.execution_time_s)"),
        "pool/encode_ns \(.pool.encode.pooled_ns)"
      ' "${file}" ;;
    *) ;;
  esac
}

total_warnings=0
for file in "$@"; do
  name="$(basename "${file}")"
  if [[ ! -f "${file}" ]]; then
    echo "bench-guard: ${name}: missing, skipped"
    continue
  fi
  baseline="$(mktemp)"
  if ! git -C "${REPO_ROOT}" show "HEAD:${name}" > "${baseline}" 2>/dev/null; then
    echo "bench-guard: ${name}: no committed baseline, skipped"
    rm -f "${baseline}"
    continue
  fi

  fresh_metrics="$(metrics_for "${file}")"
  base_metrics="$(metrics_for "${baseline}")"
  rm -f "${baseline}"

  warnings="$(awk -v tol="${TOL}" -v file="${name}" '
    NR == FNR { base[$1] = $2; next }
    ($1 in base) && base[$1] > 0 && $2 > base[$1] * (1 + tol) {
      printf "bench-guard: WARNING %s %s: %.0f -> %.0f (+%.0f%%, tolerance %.0f%%)\n",
             file, $1, base[$1], $2, ($2 / base[$1] - 1) * 100, tol * 100
      n++
    }
    END { exit n > 0 ? 1 : 0 }
  ' <(echo "${base_metrics}") <(echo "${fresh_metrics}"))" && status=0 || status=1

  if [[ ${status} -ne 0 ]]; then
    echo "${warnings}"
    total_warnings=$((total_warnings + $(echo "${warnings}" | wc -l)))
  else
    echo "bench-guard: ${name}: within ${TOL} of committed baseline"
  fi
done

if [[ ${total_warnings} -gt 0 ]]; then
  echo "bench-guard: ${total_warnings} metric(s) regressed past tolerance (warn-only, not failing)"
fi
exit 0
