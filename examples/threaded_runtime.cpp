// Threaded-runtime demo: the same JaceP2P entities as the simulator examples,
// but each on its own OS thread with real clocks and real concurrency —
// jacepp's analogue of the paper's one-JVM-per-machine deployment, folded
// into one process. A daemon is crashed mid-run to show live failure
// detection and checkpoint recovery under wall-clock timing.
//
//   $ ./threaded_runtime [--n 24] [--tasks 4] [--crash]
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/deployment_rt.hpp"
#include "poisson/block_task.hpp"
#include "poisson/poisson.hpp"
#include "support/flags.hpp"

using namespace jacepp;

int main(int argc, char** argv) {
  FlagSet flags("threaded_runtime",
                "Run JaceP2P on real threads; optionally crash a daemon");
  auto n = flags.add_int("n", 32, "grid side");
  auto tasks = flags.add_int("tasks", 4, "computing peers");
  auto crash = flags.add_bool("crash", true, "kill a computing daemon mid-run");
  auto seed = flags.add_uint("seed", 11, "seed");
  flags.parse(argc, argv);

  poisson::force_registration();

  poisson::PoissonConfig pc;
  pc.n = static_cast<std::uint32_t>(*n);
  pc.inner_tolerance = 1e-11;

  core::RtDeploymentConfig config;
  config.super_peer_count = 2;
  config.daemon_count = static_cast<std::size_t>(*tasks) + 2;
  config.seed = *seed;
  config.app.app_id = 1;
  config.app.program = poisson::PoissonTask::kProgramName;
  config.app.config = poisson::encode_config(pc);
  config.app.task_count = static_cast<std::uint32_t>(*tasks);
  config.app.checkpoint_every = 3;
  config.app.backup_peer_count = 2;
  config.app.convergence_threshold = 1e-10;
  config.app.stable_iterations_required = 20;

  const auto wall_start = std::chrono::steady_clock::now();
  core::RtDeployment deployment(config);
  deployment.start();

  if (*crash) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    if (deployment.disconnect_random_computing_daemon()) {
      std::printf("[demo] crashed one computing daemon at ~60 ms\n");
    } else {
      std::printf("[demo] no daemon was computing yet at 60 ms (fast run)\n");
    }
  }

  const auto report = deployment.wait(60.0);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  if (!report.has_value()) {
    std::printf("threaded run did not complete within 60 s\n");
    return 1;
  }

  const auto x = poisson::assemble_solution(
      static_cast<std::size_t>(*n), config.app.task_count,
      report->final_payloads);
  std::printf("threaded runtime — Poisson %lldx%lld on %lld threads\n",
              static_cast<long long>(*n), static_cast<long long>(*n),
              static_cast<long long>(*tasks));
  std::printf("  wall time          : %.3f s\n", wall);
  std::printf("  failures detected  : %llu (replacements: %llu)\n",
              static_cast<unsigned long long>(report->failures_detected),
              static_cast<unsigned long long>(report->replacements));
  std::printf("  iterations (mean)  : %.1f\n", report->mean_iteration());
  std::printf("  messages           : %llu sent, %llu lost\n",
              static_cast<unsigned long long>(
                  deployment.runtime().stats().sent.load()),
              static_cast<unsigned long long>(
                  deployment.runtime().stats().lost.load()));
  std::printf("  solution residual  : %.3e\n",
              poisson::poisson_relative_residual(pc, x));
  return 0;
}
