// Tutorial: writing your own JaceP2P application.
//
// The paper's programming model (§4.2): "A user application is a SPMD
// program which uses JaceP2P methods by extending the Task class". This
// example builds a complete custom application from scratch — the steady 1-D
// heat equation -u'' = f solved by asynchronous block-Jacobi with an exact
// tridiagonal (Thomas) inner solver — registers it as a program, launches it
// on a simulated JaceP2P network with a failure, and checks the answer.
//
// The five things a task implements:
//   init()        — build local state from the AppDescriptor + task id
//   iterate()     — one outer iteration of real math; returns its flops
//   outgoing()    — dependency data to push to neighbours afterwards
//   on_data()     — latest-wins reception of neighbour data
//   checkpoint()/restore() — serialize state for the Backup fault tolerance
#include <cmath>
#include <cstdio>

#include "core/deployment.hpp"
#include "core/task.hpp"
#include "support/flags.hpp"

using namespace jacepp;

namespace {

/// Program arguments, carried as bytes in AppDescriptor::config.
struct HeatConfig {
  std::uint32_t cells = 256;  ///< interior unknowns on [0, 1]
  /// Emulated per-cell kernel weight: scales the flops each iteration
  /// reports so the simulated compute time dwarfs per-message latency
  /// (otherwise a trivial 1-D solve spins sub-microsecond iterations).
  double work_per_cell = 1e4;

  void serialize(serial::Writer& w) const {
    w.u32(cells);
    w.f64(work_per_cell);
  }
  static HeatConfig deserialize(serial::Reader& r) {
    HeatConfig c;
    c.cells = r.u32();
    c.work_per_cell = r.f64();
    return c;
  }
};

/// -u'' = f, f = pi^2 sin(pi x)  ⇒  u = sin(pi x), Dirichlet u(0)=u(1)=0.
class HeatTask : public core::Task {
 public:
  static constexpr const char* kProgramName = "examples.heat1d";

  void init(const core::AppDescriptor& app, core::TaskId task_id) override {
    serial::Reader reader(app.config);
    config_ = HeatConfig::deserialize(reader);
    task_id_ = task_id;
    task_count_ = app.task_count;

    // Contiguous chunk of unknowns for this task.
    const std::uint32_t base = config_.cells / task_count_;
    const std::uint32_t extra = config_.cells % task_count_;
    lo_ = task_id * base + std::min(task_id, extra);
    size_ = base + (task_id < extra ? 1 : 0);

    const double h = 1.0 / (config_.cells + 1);
    inv_h2_ = 1.0 / (h * h);
    b_.resize(size_);
    for (std::uint32_t i = 0; i < size_; ++i) {
      const double x = (lo_ + i + 1) * h;
      b_[i] = M_PI * M_PI * std::sin(M_PI * x);
    }
    u_.assign(size_, 0.0);
    prev_.assign(size_, 0.0);
    left_value_ = right_value_ = 0.0;
  }

  double iterate() override {
    // Solve the local tridiagonal system exactly (Thomas algorithm) with the
    // latest neighbour boundary values as Dirichlet data.
    std::vector<double> rhs(b_);
    rhs.front() += inv_h2_ * left_value_;
    rhs.back() += inv_h2_ * right_value_;

    std::vector<double> c(size_, 0.0);
    std::vector<double> d(size_, 0.0);
    const double diag = 2.0 * inv_h2_;
    const double off = -inv_h2_;
    c[0] = off / diag;
    d[0] = rhs[0] / diag;
    for (std::uint32_t i = 1; i < size_; ++i) {
      const double m = diag - off * c[i - 1];
      c[i] = off / m;
      d[i] = (rhs[i] - off * d[i - 1]) / m;
    }
    u_[size_ - 1] = d[size_ - 1];
    for (std::uint32_t i = size_ - 1; i-- > 0;) {
      u_[i] = d[i] - c[i] * u_[i + 1];
    }

    double diff2 = 0.0;
    double norm2 = 0.0;
    for (std::uint32_t i = 0; i < size_; ++i) {
      const double delta = u_[i] - prev_[i];
      diff2 += delta * delta;
      norm2 += u_[i] * u_[i];
      prev_[i] = u_[i];
    }
    error_ = std::sqrt(diff2) / std::max(std::sqrt(norm2), 1e-300);
    informative_ = fresh_ || iterations_ == 0 || task_count_ == 1;
    fresh_ = false;
    ++iterations_;
    return 9.0 * size_ * config_.work_per_cell;
  }

  std::vector<core::OutgoingData> outgoing() override {
    std::vector<core::OutgoingData> out;
    auto one_value = [](double v) {
      serial::Writer w;
      w.f64(v);
      return w.take();
    };
    if (task_id_ > 0) out.push_back({task_id_ - 1, one_value(u_.front())});
    if (task_id_ + 1 < task_count_) {
      out.push_back({task_id_ + 1, one_value(u_.back())});
    }
    return out;
  }

  [[nodiscard]] double local_error() const override { return error_; }
  [[nodiscard]] bool error_is_informative() const override { return informative_; }

  void on_data(core::TaskId from, std::uint64_t, const serial::Bytes& bytes) override {
    serial::Reader reader(bytes);
    const double value = reader.f64();
    if (!reader.ok()) return;
    if (from + 1 == task_id_ && value != left_value_) {
      left_value_ = value;
      fresh_ = true;
    } else if (from == task_id_ + 1 && value != right_value_) {
      right_value_ = value;
      fresh_ = true;
    }
  }

  [[nodiscard]] serial::Bytes checkpoint() const override {
    serial::Writer w;
    w.f64_vector(u_);
    w.f64(left_value_);
    w.f64(right_value_);
    w.u64(iterations_);
    return w.take();
  }

  void restore(const serial::Bytes& state) override {
    serial::Reader r(state);
    u_ = r.f64_vector();
    left_value_ = r.f64();
    right_value_ = r.f64();
    iterations_ = r.u64();
    prev_ = u_;
  }

  [[nodiscard]] serial::Bytes final_payload() const override {
    serial::Writer w;
    w.f64_vector(u_);
    return w.take();
  }

 private:
  HeatConfig config_;
  core::TaskId task_id_ = 0;
  std::uint32_t task_count_ = 0;
  std::uint32_t lo_ = 0;
  std::uint32_t size_ = 0;
  double inv_h2_ = 0.0;
  std::vector<double> b_, u_, prev_;
  double left_value_ = 0.0, right_value_ = 0.0;
  bool fresh_ = false;
  bool informative_ = false;
  double error_ = 1.0;
  std::uint64_t iterations_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("custom_application",
                "Tutorial: a user-written 1-D heat task on JaceP2P");
  auto cells = flags.add_int("cells", 256, "interior unknowns");
  auto tasks = flags.add_int("tasks", 6, "computing peers");
  flags.parse(argc, argv);

  // Step 1 — register the program (the paper's "class files at a URL").
  core::TaskProgramRegistry::instance().register_program(
      HeatTask::kProgramName, [] { return std::make_unique<HeatTask>(); });

  // Step 2 — describe the application.
  HeatConfig hc;
  hc.cells = static_cast<std::uint32_t>(*cells);

  core::SimDeploymentConfig config;
  config.super_peer_count = 2;
  config.daemon_count = static_cast<std::size_t>(*tasks) + 3;
  config.app.app_id = 77;
  config.app.program = HeatTask::kProgramName;
  config.app.config = serial::encode(hc);
  config.app.task_count = static_cast<std::uint32_t>(*tasks);
  config.app.checkpoint_every = 10;
  config.app.backup_peer_count = 2;
  config.app.convergence_threshold = 1e-10;
  config.app.stable_iterations_required = 4;
  // One failure mid-run, for flavour.
  config.disconnect_times = {2.0};

  // Step 3 — run.
  core::SimDeployment deployment(config);
  const auto report = deployment.run();
  if (!report.spawner.completed) {
    std::printf("did not converge\n");
    return 1;
  }

  // Step 4 — assemble and check against u = sin(pi x).
  std::vector<double> u;
  for (const auto& payload : report.spawner.final_payloads) {
    serial::Reader r(payload);
    const auto slice = r.f64_vector();
    u.insert(u.end(), slice.begin(), slice.end());
  }
  double max_err = 0.0;
  const double h = 1.0 / (*cells + 1);
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double x = (static_cast<double>(i) + 1) * h;
    max_err = std::max(max_err, std::fabs(u[i] - std::sin(M_PI * x)));
  }

  std::printf("custom heat-1d application on %lld peers\n",
              static_cast<long long>(*tasks));
  std::printf("  converged at      : %.3f sim s\n",
              report.spawner.convergence_time);
  std::printf("  failures handled  : %llu\n",
              static_cast<unsigned long long>(report.spawner.failures_detected));
  std::printf("  max error vs sin  : %.3e (discretization is O(h^2) = %.1e)\n",
              max_err, h * h * M_PI * M_PI / 8);
  return max_err < 1e-3 ? 0 : 1;
}
