// Quickstart: launch a JaceP2P network in the simulator, run the paper's
// Poisson application on it, and verify the assembled solution.
//
//   $ ./quickstart [--n 48] [--tasks 8] [--seed 42]
//
// What happens under the hood (all of it real protocol, §5 of the paper):
//   1. Two Super-Peers come up and link into an overlay.
//   2. Twelve Daemons bootstrap: each picks a random super-peer address,
//      registers its stub, and starts heartbeating.
//   3. A Spawner reserves 8 daemons through the overlay, builds the
//      Application Register, and pushes a TaskAssignment to each.
//   4. The tasks run asynchronous block-Jacobi with inner CG, exchanging one
//      grid line with each neighbour per iteration and checkpointing every 5
//      iterations onto their backup-peers.
//   5. The Spawner's convergence board detects global stability, broadcasts
//      the halt, and collects every task's final slice.
#include <cstdio>

#include "core/deployment.hpp"
#include "poisson/block_task.hpp"
#include "poisson/poisson.hpp"
#include "support/flags.hpp"

using namespace jacepp;

int main(int argc, char** argv) {
  FlagSet flags("quickstart", "Smallest end-to-end JaceP2P run (simulator)");
  auto n = flags.add_int("n", 48, "grid side (system size n^2)");
  auto tasks = flags.add_int("tasks", 8, "computing peers");
  auto seed = flags.add_uint("seed", 42, "simulation seed");
  flags.parse(argc, argv);

  poisson::force_registration();

  // --- Describe the application (what the paper's user gives the Spawner) ---
  poisson::PoissonConfig pc;
  pc.n = static_cast<std::uint32_t>(*n);
  pc.inner_tolerance = 1e-9;
  // Put the run in the paper's compute-dominated regime (Eq. 4 ratio > 1) so
  // iteration counts stay readable; see bench_ratio for the other regime.
  pc.work_scale = 50.0;

  core::SimDeploymentConfig config;
  config.super_peer_count = 2;
  config.daemon_count = static_cast<std::size_t>(*tasks) + 4;
  config.sim.seed = *seed;
  config.app.app_id = 1;
  config.app.program = poisson::PoissonTask::kProgramName;
  config.app.config = poisson::encode_config(pc);
  config.app.task_count = static_cast<std::uint32_t>(*tasks);
  config.app.checkpoint_every = 5;
  config.app.backup_peer_count = 4;
  config.app.convergence_threshold = 1e-6;
  config.app.stable_iterations_required = 3;

  // --- Run to global convergence ---
  core::SimDeployment deployment(config);
  const auto report = deployment.run();

  if (!report.spawner.completed) {
    std::printf("run did not converge (simulated %.1f s)\n", report.sim_end_time);
    return 1;
  }

  // --- Inspect the outcome ---
  const auto x = poisson::assemble_solution(
      static_cast<std::size_t>(*n), config.app.task_count,
      report.spawner.final_payloads);
  const double residual = poisson::poisson_relative_residual(pc, x);

  std::printf("JaceP2P quickstart — Poisson %lld x %lld on %lld peers\n",
              static_cast<long long>(*n), static_cast<long long>(*n),
              static_cast<long long>(*tasks));
  std::printf("  launch            : %.3f sim s\n", report.spawner.launch_time);
  std::printf("  global convergence: %.3f sim s\n",
              report.spawner.convergence_time);
  std::printf("  outer iterations  : mean %.1f, max %llu\n",
              report.spawner.mean_iteration(),
              static_cast<unsigned long long>(report.spawner.max_iteration()));
  std::printf("  messages          : %llu sent, %llu delivered, %llu lost\n",
              static_cast<unsigned long long>(report.net.sent),
              static_cast<unsigned long long>(report.net.delivered),
              static_cast<unsigned long long>(report.net.lost()));
  std::printf("  solution residual : %.3e (relative)\n", residual);
  return residual < 1e-2 ? 0 : 1;
}
