// Volatile-network demo: the paper's §7 scenario in miniature, upgraded to
// the decentralized control plane (DESIGN.md §13) under a deterministic churn
// script (DESIGN.md §14). Four linked super-peers shard the daemon Register;
// convergence is detected by diffusion waves over the task ring; the churn
// script injects a flash crowd of late joiners, correlated failure bursts
// (revived ~20 s later) and a batch of suddenly-slow peers while the solver
// runs. Reputation-aware placement steers replacements toward peers that kept
// their heartbeats up. The run narrates every event and asserts at exit that
// the solver actually converged to the right answer.
//
//   $ ./volatile_network [--bursts 3] [--n 64] [--tasks 8]
#include <cstdio>

#include "core/daemon.hpp"
#include "core/deployment.hpp"
#include "poisson/block_task.hpp"
#include "poisson/poisson.hpp"
#include "support/flags.hpp"
#include "support/logging.hpp"

using namespace jacepp;

int main(int argc, char** argv) {
  FlagSet flags("volatile_network",
                "Poisson on the decentralized control plane under churn");
  auto n = flags.add_int("n", 64, "grid side");
  auto tasks = flags.add_int("tasks", 8, "computing peers");
  auto bursts = flags.add_int("bursts", 3, "correlated failure bursts");
  auto burst_size = flags.add_int("burst-size", 2, "daemons per burst");
  auto seed = flags.add_uint("seed", 7, "simulation seed");
  flags.parse(argc, argv);

  poisson::force_registration();
  set_log_level(LogLevel::Info);  // narrate spawner/daemon decisions

  poisson::PoissonConfig pc;
  pc.n = static_cast<std::uint32_t>(*n);
  pc.inner_tolerance = 1e-9;
  pc.work_scale = 400.0;  // paper-scale per-iteration cost → churn lands mid-run

  core::SimDeploymentConfig config;
  config.daemon_count = static_cast<std::size_t>(*tasks) + 6;
  config.sim.seed = *seed;
  config.app.app_id = 1;
  config.app.program = poisson::PoissonTask::kProgramName;
  config.app.config = poisson::encode_config(pc);
  config.app.task_count = static_cast<std::uint32_t>(*tasks);
  config.app.checkpoint_every = 5;
  config.app.backup_peer_count = 4;
  config.app.convergence_threshold = 1e-6;
  config.app.stable_iterations_required = 3;
  config.max_sim_time = 4000.0;

  // Decentralized control plane (§13): four linked super-peers, sharded
  // Register, replicated Application Register, diffusion-wave convergence.
  config.cp.super_peers = 4;
  config.cp.shard_register = true;
  config.cp.replicate_register = true;
  config.cp.diffusion = true;

  // Deterministic churn script (§14): one flash crowd of late joiners,
  // correlated failure bursts revived ~20 s later, and a slowdown wave.
  config.churn.seed = *seed;
  config.churn.start = 5.0;
  config.churn.horizon = 60.0;
  config.churn.flash_crowds = 1;
  config.churn.flash_size = 4;
  config.churn.failure_bursts = static_cast<std::size_t>(*bursts);
  config.churn.burst_size = static_cast<std::size_t>(*burst_size);
  config.churn.revive = true;
  config.churn.revive_delay = 20.0;
  config.churn.slowdowns = 1;
  config.churn.slowdown_size = 2;
  config.churn.slow_factor = 6.0;

  // Reputation-aware placement (§14): replacements prefer peers that kept
  // their heartbeats up; checkpoints flow toward the best-scored hosts.
  config.rep.enabled = true;
  config.rep.backup_placement = true;

  core::SimDeployment deployment(config);
  const auto report = deployment.run();

  std::printf("\n--- volatile network summary ---\n");
  std::printf("  completed           : %s\n",
              report.spawner.completed ? "yes" : "NO");
  std::printf("  flash joins         : %llu\n",
              static_cast<unsigned long long>(report.flash_joins));
  std::printf("  burst disconnects   : %llu (revivals: %llu)\n",
              static_cast<unsigned long long>(report.burst_disconnections),
              static_cast<unsigned long long>(report.burst_revivals));
  std::printf("  slowdowns applied   : %llu\n",
              static_cast<unsigned long long>(report.slowdowns_applied));
  std::printf("  failures detected   : %llu, replacements: %llu\n",
              static_cast<unsigned long long>(report.spawner.failures_detected),
              static_cast<unsigned long long>(report.spawner.replacements));
  std::printf("  restores from backup: %llu, restarts from zero: %llu\n",
              static_cast<unsigned long long>(report.restores_from_backup),
              static_cast<unsigned long long>(report.restarts_from_zero));
  std::printf("  execution time      : %.1f sim s\n",
              report.spawner.execution_time());

  if (!report.spawner.completed) {
    std::printf("FAIL: solver did not converge under churn\n");
    return 1;
  }
  const auto x = poisson::assemble_solution(
      static_cast<std::size_t>(*n), config.app.task_count,
      report.spawner.final_payloads);
  const double residual = poisson::poisson_relative_residual(pc, x);
  std::printf("  solution residual   : %.3e\n", residual);
  if (!(residual < 1e-4)) {
    std::printf("FAIL: residual %.3e exceeds 1e-4 — churn corrupted the solve\n",
                residual);
    return 1;
  }
  return 0;
}
