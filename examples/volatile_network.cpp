// Volatile-network demo: the paper's §7 scenario in miniature. Peers are
// yanked out of the network mid-computation and reconnect ~20 s later; the
// spawner detects each failure by heartbeat timeout, reserves a replacement
// through the super-peer overlay, and the replacement reloads the newest
// Backup from the failed task's backup-peers. The run narrates every event.
//
//   $ ./volatile_network [--disconnections 8] [--n 64] [--tasks 8]
#include <cstdio>

#include "core/daemon.hpp"
#include "core/deployment.hpp"
#include "poisson/block_task.hpp"
#include "poisson/poisson.hpp"
#include "support/flags.hpp"
#include "support/logging.hpp"

using namespace jacepp;

int main(int argc, char** argv) {
  FlagSet flags("volatile_network",
                "Poisson under repeated disconnections with live narration");
  auto n = flags.add_int("n", 64, "grid side");
  auto tasks = flags.add_int("tasks", 8, "computing peers");
  auto disconnections = flags.add_int("disconnections", 8, "failures to inject");
  auto seed = flags.add_uint("seed", 7, "simulation seed");
  flags.parse(argc, argv);

  poisson::force_registration();
  set_log_level(LogLevel::Info);  // narrate spawner/daemon decisions

  poisson::PoissonConfig pc;
  pc.n = static_cast<std::uint32_t>(*n);
  pc.inner_tolerance = 1e-9;
  pc.work_scale = 400.0;  // paper-scale per-iteration cost → failures land mid-run

  core::SimDeploymentConfig config;
  config.super_peer_count = 3;
  config.daemon_count = static_cast<std::size_t>(*tasks) + 6;
  config.sim.seed = *seed;
  config.app.app_id = 1;
  config.app.program = poisson::PoissonTask::kProgramName;
  config.app.config = poisson::encode_config(pc);
  config.app.task_count = static_cast<std::uint32_t>(*tasks);
  config.app.checkpoint_every = 5;
  config.app.backup_peer_count = 4;
  config.app.convergence_threshold = 1e-6;
  config.app.stable_iterations_required = 3;
  config.max_sim_time = 4000.0;

  // Paper protocol: random disconnections during execution, reconnection
  // about 20 seconds later.
  config.disconnect_times = core::uniform_disconnect_schedule(
      static_cast<std::size_t>(*disconnections), 5.0, 60.0, *seed);
  config.reconnect_delay = 20.0;

  core::SimDeployment deployment(config);
  const auto report = deployment.run();

  std::printf("\n--- volatile network summary ---\n");
  std::printf("  completed           : %s\n",
              report.spawner.completed ? "yes" : "NO");
  std::printf("  disconnections      : %zu (reconnections: %zu)\n",
              report.disconnections_executed, report.reconnections_executed);
  std::printf("  failures detected   : %llu, replacements: %llu\n",
              static_cast<unsigned long long>(report.spawner.failures_detected),
              static_cast<unsigned long long>(report.spawner.replacements));
  std::printf("  restores from backup: %llu, restarts from zero: %llu\n",
              static_cast<unsigned long long>(report.restores_from_backup),
              static_cast<unsigned long long>(report.restarts_from_zero));
  std::printf("  execution time      : %.1f sim s\n",
              report.spawner.execution_time());

  if (report.spawner.completed) {
    const auto x = poisson::assemble_solution(
        static_cast<std::size_t>(*n), config.app.task_count,
        report.spawner.final_payloads);
    std::printf("  solution residual   : %.3e\n",
                poisson::poisson_relative_residual(pc, x));
  }
  return report.spawner.completed ? 0 : 1;
}
