// Generic solver example: JaceP2P is not tied to the Poisson problem — the
// built-in "generic.multisplit" program runs ANY symmetric positive definite
// sparse system, deriving each task's communication pattern from the
// sparsity structure of the matrix. Here: a 2-D anisotropic diffusion
// operator (different conductivities per axis), solved on a volatile network
// and verified against a direct CG solve.
//
//   $ ./generic_solver [--n 20] [--tasks 5] [--anisotropy 8]
#include <cstdio>

#include "core/deployment.hpp"
#include "core/generic_task.hpp"
#include "linalg/cg.hpp"
#include "linalg/vector_ops.hpp"
#include "support/flags.hpp"

using namespace jacepp;

namespace {

/// 5-point anisotropic diffusion: -(a u_xx + c u_yy) = f.
linalg::CsrMatrix anisotropic_laplacian(std::size_t n, double a, double c) {
  const double h = 1.0 / static_cast<double>(n + 1);
  const double ax = a / (h * h);
  const double cy = c / (h * h);
  linalg::CsrBuilder builder(n * n, n * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = j * n + i;
      builder.add(row, row, 2.0 * (ax + cy));
      if (i > 0) builder.add(row, row - 1, -ax);
      if (i + 1 < n) builder.add(row, row + 1, -ax);
      if (j > 0) builder.add(row, row - n, -cy);
      if (j + 1 < n) builder.add(row, row + n, -cy);
    }
  }
  return builder.build();
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("generic_solver",
                "Any SPD system on JaceP2P via the generic multisplit program");
  auto n = flags.add_int("n", 20, "grid side (system is n^2 unknowns)");
  auto tasks = flags.add_int("tasks", 5, "computing peers");
  auto anisotropy = flags.add_double("anisotropy", 8.0, "x/y conductivity ratio");
  flags.parse(argc, argv);

  core::GenericMultisplitTask::force_registration();

  const std::size_t grid = static_cast<std::size_t>(*n);
  const auto a = anisotropic_laplacian(grid, *anisotropy, 1.0);
  linalg::Vector b(grid * grid, 1.0);  // uniform source term

  core::GenericConfig gc;
  gc.a = a;
  gc.b = b;
  gc.inner_tolerance = 1e-10;
  gc.work_scale = 500.0;  // keep the run compute-dominated

  core::SimDeploymentConfig config;
  config.super_peer_count = 2;
  config.daemon_count = static_cast<std::size_t>(*tasks) + 3;
  config.app.app_id = 9;
  config.app.program = core::GenericMultisplitTask::kProgramName;
  config.app.config = serial::encode(gc);
  config.app.task_count = static_cast<std::uint32_t>(*tasks);
  config.app.checkpoint_every = 5;
  config.app.backup_peer_count = 3;
  config.app.convergence_threshold = 1e-8;
  config.app.stable_iterations_required = 4;
  config.disconnect_times = {3.0, 7.0};  // two failures for good measure
  config.max_sim_time = 4000.0;

  core::SimDeployment deployment(config);
  const auto report = deployment.run();
  if (!report.spawner.completed) {
    std::printf("did not converge\n");
    return 1;
  }

  const auto x = core::assemble_generic_solution(
      a, config.app.task_count, report.spawner.final_payloads);

  // Reference: direct CG on the whole system.
  linalg::Vector reference;
  linalg::CgOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 20 * grid * grid;
  linalg::conjugate_gradient(a, b, reference, options);

  std::printf("generic anisotropic-diffusion solve on %lld peers\n",
              static_cast<long long>(*tasks));
  std::printf("  system              : %zu unknowns, anisotropy %.1f\n",
              grid * grid, *anisotropy);
  std::printf("  converged at        : %.2f sim s\n",
              report.spawner.convergence_time);
  std::printf("  failures handled    : %llu\n",
              static_cast<unsigned long long>(report.spawner.failures_detected));
  std::printf("  max |x - reference| : %.3e\n",
              linalg::distance_inf(x, reference));
  return linalg::distance_inf(x, reference) < 1e-4 ? 0 : 1;
}
