file(REMOVE_RECURSE
  "CMakeFiles/jacepp_linalg.dir/cg.cpp.o"
  "CMakeFiles/jacepp_linalg.dir/cg.cpp.o.d"
  "CMakeFiles/jacepp_linalg.dir/csr.cpp.o"
  "CMakeFiles/jacepp_linalg.dir/csr.cpp.o.d"
  "CMakeFiles/jacepp_linalg.dir/partition.cpp.o"
  "CMakeFiles/jacepp_linalg.dir/partition.cpp.o.d"
  "CMakeFiles/jacepp_linalg.dir/splitting.cpp.o"
  "CMakeFiles/jacepp_linalg.dir/splitting.cpp.o.d"
  "CMakeFiles/jacepp_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/jacepp_linalg.dir/vector_ops.cpp.o.d"
  "libjacepp_linalg.a"
  "libjacepp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacepp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
