# Empty compiler generated dependencies file for jacepp_linalg.
# This may be replaced when dependencies are built.
