file(REMOVE_RECURSE
  "libjacepp_linalg.a"
)
