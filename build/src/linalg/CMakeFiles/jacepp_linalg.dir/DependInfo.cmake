
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cg.cpp" "src/linalg/CMakeFiles/jacepp_linalg.dir/cg.cpp.o" "gcc" "src/linalg/CMakeFiles/jacepp_linalg.dir/cg.cpp.o.d"
  "/root/repo/src/linalg/csr.cpp" "src/linalg/CMakeFiles/jacepp_linalg.dir/csr.cpp.o" "gcc" "src/linalg/CMakeFiles/jacepp_linalg.dir/csr.cpp.o.d"
  "/root/repo/src/linalg/partition.cpp" "src/linalg/CMakeFiles/jacepp_linalg.dir/partition.cpp.o" "gcc" "src/linalg/CMakeFiles/jacepp_linalg.dir/partition.cpp.o.d"
  "/root/repo/src/linalg/splitting.cpp" "src/linalg/CMakeFiles/jacepp_linalg.dir/splitting.cpp.o" "gcc" "src/linalg/CMakeFiles/jacepp_linalg.dir/splitting.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/linalg/CMakeFiles/jacepp_linalg.dir/vector_ops.cpp.o" "gcc" "src/linalg/CMakeFiles/jacepp_linalg.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/jacepp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
