file(REMOVE_RECURSE
  "libjacepp_asynciter.a"
)
