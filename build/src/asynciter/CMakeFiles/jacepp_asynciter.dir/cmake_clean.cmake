file(REMOVE_RECURSE
  "CMakeFiles/jacepp_asynciter.dir/multisplit.cpp.o"
  "CMakeFiles/jacepp_asynciter.dir/multisplit.cpp.o.d"
  "libjacepp_asynciter.a"
  "libjacepp_asynciter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacepp_asynciter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
