# Empty compiler generated dependencies file for jacepp_asynciter.
# This may be replaced when dependencies are built.
