file(REMOVE_RECURSE
  "CMakeFiles/jacepp_support.dir/flags.cpp.o"
  "CMakeFiles/jacepp_support.dir/flags.cpp.o.d"
  "CMakeFiles/jacepp_support.dir/logging.cpp.o"
  "CMakeFiles/jacepp_support.dir/logging.cpp.o.d"
  "CMakeFiles/jacepp_support.dir/rng.cpp.o"
  "CMakeFiles/jacepp_support.dir/rng.cpp.o.d"
  "CMakeFiles/jacepp_support.dir/stats.cpp.o"
  "CMakeFiles/jacepp_support.dir/stats.cpp.o.d"
  "libjacepp_support.a"
  "libjacepp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacepp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
