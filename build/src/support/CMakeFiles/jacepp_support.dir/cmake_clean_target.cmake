file(REMOVE_RECURSE
  "libjacepp_support.a"
)
