# Empty compiler generated dependencies file for jacepp_support.
# This may be replaced when dependencies are built.
