file(REMOVE_RECURSE
  "libjacepp_core.a"
)
