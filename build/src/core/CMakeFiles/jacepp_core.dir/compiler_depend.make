# Empty compiler generated dependencies file for jacepp_core.
# This may be replaced when dependencies are built.
