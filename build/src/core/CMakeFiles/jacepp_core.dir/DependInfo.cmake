
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app.cpp" "src/core/CMakeFiles/jacepp_core.dir/app.cpp.o" "gcc" "src/core/CMakeFiles/jacepp_core.dir/app.cpp.o.d"
  "/root/repo/src/core/daemon.cpp" "src/core/CMakeFiles/jacepp_core.dir/daemon.cpp.o" "gcc" "src/core/CMakeFiles/jacepp_core.dir/daemon.cpp.o.d"
  "/root/repo/src/core/deployment.cpp" "src/core/CMakeFiles/jacepp_core.dir/deployment.cpp.o" "gcc" "src/core/CMakeFiles/jacepp_core.dir/deployment.cpp.o.d"
  "/root/repo/src/core/deployment_rt.cpp" "src/core/CMakeFiles/jacepp_core.dir/deployment_rt.cpp.o" "gcc" "src/core/CMakeFiles/jacepp_core.dir/deployment_rt.cpp.o.d"
  "/root/repo/src/core/generic_task.cpp" "src/core/CMakeFiles/jacepp_core.dir/generic_task.cpp.o" "gcc" "src/core/CMakeFiles/jacepp_core.dir/generic_task.cpp.o.d"
  "/root/repo/src/core/spawner.cpp" "src/core/CMakeFiles/jacepp_core.dir/spawner.cpp.o" "gcc" "src/core/CMakeFiles/jacepp_core.dir/spawner.cpp.o.d"
  "/root/repo/src/core/super_peer.cpp" "src/core/CMakeFiles/jacepp_core.dir/super_peer.cpp.o" "gcc" "src/core/CMakeFiles/jacepp_core.dir/super_peer.cpp.o.d"
  "/root/repo/src/core/task.cpp" "src/core/CMakeFiles/jacepp_core.dir/task.cpp.o" "gcc" "src/core/CMakeFiles/jacepp_core.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/jacepp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jacepp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/jacepp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/asynciter/CMakeFiles/jacepp_asynciter.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/jacepp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jacepp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
