file(REMOVE_RECURSE
  "CMakeFiles/jacepp_core.dir/app.cpp.o"
  "CMakeFiles/jacepp_core.dir/app.cpp.o.d"
  "CMakeFiles/jacepp_core.dir/daemon.cpp.o"
  "CMakeFiles/jacepp_core.dir/daemon.cpp.o.d"
  "CMakeFiles/jacepp_core.dir/deployment.cpp.o"
  "CMakeFiles/jacepp_core.dir/deployment.cpp.o.d"
  "CMakeFiles/jacepp_core.dir/deployment_rt.cpp.o"
  "CMakeFiles/jacepp_core.dir/deployment_rt.cpp.o.d"
  "CMakeFiles/jacepp_core.dir/generic_task.cpp.o"
  "CMakeFiles/jacepp_core.dir/generic_task.cpp.o.d"
  "CMakeFiles/jacepp_core.dir/spawner.cpp.o"
  "CMakeFiles/jacepp_core.dir/spawner.cpp.o.d"
  "CMakeFiles/jacepp_core.dir/super_peer.cpp.o"
  "CMakeFiles/jacepp_core.dir/super_peer.cpp.o.d"
  "CMakeFiles/jacepp_core.dir/task.cpp.o"
  "CMakeFiles/jacepp_core.dir/task.cpp.o.d"
  "libjacepp_core.a"
  "libjacepp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacepp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
