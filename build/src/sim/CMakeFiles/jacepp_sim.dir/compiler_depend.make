# Empty compiler generated dependencies file for jacepp_sim.
# This may be replaced when dependencies are built.
