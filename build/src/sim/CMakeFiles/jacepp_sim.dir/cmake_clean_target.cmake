file(REMOVE_RECURSE
  "libjacepp_sim.a"
)
