file(REMOVE_RECURSE
  "CMakeFiles/jacepp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/jacepp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/jacepp_sim.dir/machine.cpp.o"
  "CMakeFiles/jacepp_sim.dir/machine.cpp.o.d"
  "CMakeFiles/jacepp_sim.dir/world.cpp.o"
  "CMakeFiles/jacepp_sim.dir/world.cpp.o.d"
  "libjacepp_sim.a"
  "libjacepp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacepp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
