# Empty dependencies file for jacepp_net.
# This may be replaced when dependencies are built.
