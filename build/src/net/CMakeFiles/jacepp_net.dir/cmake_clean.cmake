file(REMOVE_RECURSE
  "CMakeFiles/jacepp_net.dir/stub.cpp.o"
  "CMakeFiles/jacepp_net.dir/stub.cpp.o.d"
  "libjacepp_net.a"
  "libjacepp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacepp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
