file(REMOVE_RECURSE
  "libjacepp_net.a"
)
