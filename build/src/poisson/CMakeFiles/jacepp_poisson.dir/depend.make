# Empty dependencies file for jacepp_poisson.
# This may be replaced when dependencies are built.
