file(REMOVE_RECURSE
  "CMakeFiles/jacepp_poisson.dir/block_task.cpp.o"
  "CMakeFiles/jacepp_poisson.dir/block_task.cpp.o.d"
  "CMakeFiles/jacepp_poisson.dir/poisson.cpp.o"
  "CMakeFiles/jacepp_poisson.dir/poisson.cpp.o.d"
  "libjacepp_poisson.a"
  "libjacepp_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacepp_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
