file(REMOVE_RECURSE
  "libjacepp_poisson.a"
)
