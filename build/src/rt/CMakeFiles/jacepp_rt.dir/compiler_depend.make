# Empty compiler generated dependencies file for jacepp_rt.
# This may be replaced when dependencies are built.
