file(REMOVE_RECURSE
  "CMakeFiles/jacepp_rt.dir/runtime.cpp.o"
  "CMakeFiles/jacepp_rt.dir/runtime.cpp.o.d"
  "libjacepp_rt.a"
  "libjacepp_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacepp_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
