file(REMOVE_RECURSE
  "libjacepp_rt.a"
)
