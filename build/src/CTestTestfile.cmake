# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("serial")
subdirs("linalg")
subdirs("net")
subdirs("sim")
subdirs("rt")
subdirs("rmi")
subdirs("asynciter")
subdirs("core")
subdirs("poisson")
