file(REMOVE_RECURSE
  "CMakeFiles/bench_ratio.dir/bench_ratio.cpp.o"
  "CMakeFiles/bench_ratio.dir/bench_ratio.cpp.o.d"
  "bench_ratio"
  "bench_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
