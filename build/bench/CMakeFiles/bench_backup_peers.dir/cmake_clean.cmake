file(REMOVE_RECURSE
  "CMakeFiles/bench_backup_peers.dir/bench_backup_peers.cpp.o"
  "CMakeFiles/bench_backup_peers.dir/bench_backup_peers.cpp.o.d"
  "bench_backup_peers"
  "bench_backup_peers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backup_peers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
