# Empty dependencies file for bench_backup_peers.
# This may be replaced when dependencies are built.
