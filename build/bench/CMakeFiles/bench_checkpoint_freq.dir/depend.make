# Empty dependencies file for bench_checkpoint_freq.
# This may be replaced when dependencies are built.
