file(REMOVE_RECURSE
  "CMakeFiles/bench_checkpoint_freq.dir/bench_checkpoint_freq.cpp.o"
  "CMakeFiles/bench_checkpoint_freq.dir/bench_checkpoint_freq.cpp.o.d"
  "bench_checkpoint_freq"
  "bench_checkpoint_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkpoint_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
