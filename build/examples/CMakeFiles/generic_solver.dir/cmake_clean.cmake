file(REMOVE_RECURSE
  "CMakeFiles/generic_solver.dir/generic_solver.cpp.o"
  "CMakeFiles/generic_solver.dir/generic_solver.cpp.o.d"
  "generic_solver"
  "generic_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
