# Empty compiler generated dependencies file for generic_solver.
# This may be replaced when dependencies are built.
