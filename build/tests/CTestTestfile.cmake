# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_integration_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration_rt[1]_include.cmake")
include("/root/repo/build/tests/test_serial[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_asynciter[1]_include.cmake")
include("/root/repo/build/tests/test_poisson[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
