# Empty compiler generated dependencies file for test_integration_sim.
# This may be replaced when dependencies are built.
