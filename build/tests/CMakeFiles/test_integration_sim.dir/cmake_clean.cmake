file(REMOVE_RECURSE
  "CMakeFiles/test_integration_sim.dir/core/test_integration_sim.cpp.o"
  "CMakeFiles/test_integration_sim.dir/core/test_integration_sim.cpp.o.d"
  "test_integration_sim"
  "test_integration_sim.pdb"
  "test_integration_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
