
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_rmi.cpp" "tests/CMakeFiles/test_net.dir/net/test_rmi.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_rmi.cpp.o.d"
  "/root/repo/tests/net/test_stub.cpp" "tests/CMakeFiles/test_net.dir/net/test_stub.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_stub.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/poisson/CMakeFiles/jacepp_poisson.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jacepp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/asynciter/CMakeFiles/jacepp_asynciter.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/jacepp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jacepp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jacepp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/jacepp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jacepp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
