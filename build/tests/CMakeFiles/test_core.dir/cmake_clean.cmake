file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_app.cpp.o"
  "CMakeFiles/test_core.dir/core/test_app.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_daemon_backup.cpp.o"
  "CMakeFiles/test_core.dir/core/test_daemon_backup.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_generic_task.cpp.o"
  "CMakeFiles/test_core.dir/core/test_generic_task.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scenarios.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scenarios.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_spawner.cpp.o"
  "CMakeFiles/test_core.dir/core/test_spawner.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_super_peer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_super_peer.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
