file(REMOVE_RECURSE
  "CMakeFiles/test_integration_rt.dir/core/test_integration_rt.cpp.o"
  "CMakeFiles/test_integration_rt.dir/core/test_integration_rt.cpp.o.d"
  "test_integration_rt"
  "test_integration_rt.pdb"
  "test_integration_rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
