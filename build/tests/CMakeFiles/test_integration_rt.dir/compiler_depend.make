# Empty compiler generated dependencies file for test_integration_rt.
# This may be replaced when dependencies are built.
