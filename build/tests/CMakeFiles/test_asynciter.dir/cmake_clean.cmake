file(REMOVE_RECURSE
  "CMakeFiles/test_asynciter.dir/asynciter/test_convergence.cpp.o"
  "CMakeFiles/test_asynciter.dir/asynciter/test_convergence.cpp.o.d"
  "CMakeFiles/test_asynciter.dir/asynciter/test_multisplit.cpp.o"
  "CMakeFiles/test_asynciter.dir/asynciter/test_multisplit.cpp.o.d"
  "test_asynciter"
  "test_asynciter.pdb"
  "test_asynciter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asynciter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
