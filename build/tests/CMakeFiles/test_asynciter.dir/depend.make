# Empty dependencies file for test_asynciter.
# This may be replaced when dependencies are built.
